"""Tests for ``repro deploy``: sharding, specs, and real multi-process runs.

The end-to-end tests spawn genuine worker processes over loopback TCP.
This module stays import-safe for the ``spawn`` start method: children
re-import it as a plain module, never as ``__main__`` with side
effects.
"""

import json
from pathlib import Path

import pytest

from repro.checks import check_shard_assignment
from repro.cli import main
from repro.cluster.metrics import MetricRegistry
from repro.obs import names
from repro.obs.export import read_jsonl_spans
from repro.net.deploy import (
    CONTROL_ADDRESS_BASE,
    DeploySpec,
    control_address,
    make_spec,
    parse_chaos_kill,
    participating_nodes,
    run_deploy,
    shard_nodes,
)
from repro.runtime import MonitoringRuntime, RuntimeConfig

#: Small-but-real workload shared by the e2e tests: enough nodes to
#: give every worker a shard, small enough to finish in seconds.
WORKLOAD = {"nodes": 16, "pool": 8, "attrs_per_node": 6, "tasks": 4, "seed": 3}
CONFIG = {"period_seconds": 0.05, "seed": 9}

#: Acceptance tolerance: deploy coverage within five percentage points
#: of the single-process runtime on the identical plan.
TOLERANCE = 0.05

RUN_SCHEMA_KEYS = {
    "requested_pairs",
    "periods",
    "coverage",
    "mean_percentage_error",
    "messages",
    "cost_units_spent",
    "values",
    "failure_events",
    "per_period",
    "wall_seconds",
    "metrics",
}


class TestShardNodes:
    def test_covers_every_node_exactly_once(self):
        nodes = list(range(17))
        shards = shard_nodes(nodes, 4)
        assert len(shards) == 4
        flat = [n for shard in shards for n in shard]
        assert sorted(flat) == nodes
        assert len(flat) == len(set(flat))

    def test_balanced_within_one(self):
        shards = shard_nodes(range(10), 3)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_nodes_leaves_empty_shards(self):
        shards = shard_nodes([1, 2], 4)
        assert sorted(n for s in shards for n in s) == [1, 2]
        assert len(shards) == 4

    def test_deterministic_regardless_of_input_order(self):
        assert shard_nodes([3, 1, 2], 2) == shard_nodes([2, 3, 1], 2)


class TestShardAssignmentCheck:
    def test_clean_split_passes(self):
        report = check_shard_assignment([1, 2, 3, 4], [[1, 3], [2, 4]])
        assert not report

    def test_missing_node_is_remo351(self):
        report = check_shard_assignment([1, 2, 3], [[1], [2]])
        assert report.has_errors
        assert "REMO351" in report.codes()

    def test_duplicate_assignment_is_remo351(self):
        report = check_shard_assignment([1, 2], [[1, 2], [2]])
        assert report.has_errors
        assert "REMO351" in report.codes()

    def test_reserved_address_is_remo352(self):
        report = check_shard_assignment([1], [[1, control_address(0)]])
        assert "REMO352" in report.codes()

    def test_endpoint_collision_is_remo353(self):
        report = check_shard_assignment(
            [1, 2],
            [[1], [2]],
            endpoints=[("127.0.0.1", 9000), ("127.0.0.1", 9000)],
        )
        assert report.has_errors
        assert "REMO353" in report.codes()

    def test_empty_shard_is_remo354_warning(self):
        report = check_shard_assignment([1], [[1], []])
        assert not report.has_errors
        assert "REMO354" in report.codes()


class TestDeploySpec:
    def test_round_trip_through_json(self, tmp_path):
        spec, plan, _cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=4, config=CONFIG,
            rundir=str(tmp_path),
        )
        assert not report.has_errors
        loaded = DeploySpec.load(spec.spec_path)
        assert loaded.as_dict() == spec.as_dict()
        assert loaded.workers == 2

    def test_children_rebuild_the_identical_plan(self, tmp_path):
        spec, plan, _cluster, _report = make_spec(
            WORKLOAD, "remo", workers=2, periods=4, config=CONFIG,
            rundir=str(tmp_path),
        )
        loaded = DeploySpec.load(spec.spec_path)
        _cluster2, _cost2, plan2 = loaded.build_plan()
        assert plan2.pairs == plan.pairs
        assert participating_nodes(plan2) == participating_nodes(plan)

    def test_directory_routes_every_address(self, tmp_path):
        spec, plan, _cluster, _report = make_spec(
            WORKLOAD, "remo", workers=2, periods=4, config=CONFIG,
            rundir=str(tmp_path),
        )
        directory = spec.build_directory()
        for node in participating_nodes(plan):
            assert directory.endpoint_of(node) is not None
        for rank in range(spec.workers):
            assert directory.endpoint_of(control_address(rank)) == (
                spec.worker_endpoints[rank]
            )

    def test_unknown_preset_rejected(self):
        spec = DeploySpec(
            workload={"preset": "warp"}, scheme="remo", periods=1,
            shards=[], worker_endpoints=[],
            collector_endpoint=None, rundir=".",
        )
        with pytest.raises(ValueError, match="preset"):
            spec.build_workload()


class TestParseChaosKill:
    def test_parses_rank_and_seconds(self):
        assert parse_chaos_kill("1:0.5") == (1, 0.5)

    def test_rejects_malformed(self):
        for bad in ("nonsense", "1", "x:1", "1:y", "-1:1"):
            with pytest.raises(ValueError):
                parse_chaos_kill(bad)


class TestDeployEndToEnd:
    def _single_process_coverage(self, plan, cluster):
        report = MonitoringRuntime(
            plan,
            cluster,
            registry=MetricRegistry(sorted(plan.pairs), seed=CONFIG["seed"]),
            config=RuntimeConfig(**CONFIG),
        ).run(6)
        return report.mean_coverage

    def test_two_worker_deploy_matches_single_process(self, tmp_path):
        spec, plan, cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=6, config=CONFIG,
            rundir=str(tmp_path),
        )
        assert not report.has_errors
        outcome = run_deploy(spec, plan=plan)
        assert outcome.restart_total() == 0
        assert outcome.worker_reports == 2

        merged = outcome.report.as_dict()
        assert RUN_SCHEMA_KEYS <= set(merged)
        assert merged["periods"] == 6
        assert len(merged["per_period"]) == 6

        baseline = self._single_process_coverage(plan, cluster)
        assert outcome.report.mean_coverage == pytest.approx(
            baseline, abs=TOLERANCE
        )

    def test_worker_kill_and_restart_completes(self, tmp_path):
        spec, plan, _cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=8, config=CONFIG,
            rundir=str(tmp_path),
        )
        assert not report.has_errors
        outcome = run_deploy(spec, plan=plan, chaos_kill={1: 0.15})
        assert outcome.restarts[1] >= 1
        assert len(outcome.report.samples) == 8
        # The run must still collect most of the plan despite the
        # mid-run restart (coverage is cumulative per period).
        assert outcome.report.final_coverage > 0.5


class TestDeployTracing:
    """End-to-end distributed tracing: one period == one trace id."""

    ROLES = ("collector", "worker-0", "worker-1")

    def _spans_by_role(self, spec):
        return {role: read_jsonl_spans(spec.trace_path(role)) for role in self.ROLES}

    def test_every_period_is_one_trace_across_processes(self, tmp_path):
        spec, plan, _cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=5, config=CONFIG,
            rundir=str(tmp_path), trace=True,
        )
        assert not report.has_errors
        outcome = run_deploy(spec, plan=plan)
        assert sorted(outcome.trace_files) == sorted(
            spec.trace_path(role) for role in self.ROLES
        )
        by_role = self._spans_by_role(spec)
        merged = [span for spans in by_role.values() for span in spans]
        roots = [s for s in merged if s.name == names.SPAN_RUNTIME_PERIOD]
        assert sorted(r.attrs["period"] for r in roots) == [0, 1, 2, 3, 4]
        assert len({r.trace_id for r in roots}) == 5
        collector_pids = {s.pid for s in by_role["collector"]}
        for root in roots:
            trace_spans = [s for s in merged if s.trace_id == root.trace_id]
            # The collector process and both worker processes all
            # contribute spans carrying this period's trace id.
            assert len({s.pid for s in trace_spans}) >= 3
            # Parent links cross the TCP boundary: worker-side spans
            # chain directly to the collector-minted period root.
            crossed = [
                s
                for s in trace_spans
                if s.pid not in collector_pids and s.parent_id == root.span_id
            ]
            assert crossed, "no worker span chained to the period root over TCP"
            span_ids = {s.span_id for s in trace_spans}
            for span in trace_spans:
                if span.parent_id is not None:
                    assert span.parent_id in span_ids

    def test_trace_context_survives_chaos_restart(self, tmp_path):
        spec, plan, _cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=8, config=CONFIG,
            rundir=str(tmp_path), trace=True,
        )
        assert not report.has_errors
        outcome = run_deploy(spec, plan=plan, chaos_kill={1: 0.15})
        assert outcome.restarts[1] >= 1
        # The supervisor flight-records every restart (the SIGKILLed
        # child cannot dump its own ring).
        assert spec.flight_path("supervisor") in outcome.flight_records
        flight = json.loads(Path(spec.flight_path("supervisor")).read_text())
        assert flight["flight_record"] == 1
        assert "restarting" in flight["reason"]
        assert any(
            event["event"] == names.LOG_FLIGHT_DUMP for event in flight["events"]
        )
        # The restarted worker-1 -- a brand-new process -- rejoins the
        # collector-minted period traces carried by tick envelopes.
        by_role = self._spans_by_role(spec)
        period_of = {
            s.trace_id: s.attrs["period"]
            for s in by_role["collector"]
            if s.name == names.SPAN_RUNTIME_PERIOD
        }
        rejoined = {
            period_of[s.trace_id]
            for s in by_role["worker-1"]
            if s.trace_id in period_of
        }
        assert rejoined, "restarted worker produced no spans in any period trace"


class TestDeployCli:
    def test_deploy_json_has_run_schema(self, tmp_path, capsys):
        rc = main(
            [
                "deploy",
                "--nodes", "12", "--tasks", "3", "--pool", "6",
                "--scheme", "remo",
                "--workers", "2", "--periods", "4", "--period-seconds", "0.05",
                "--seed", "4", "--rundir", str(tmp_path), "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "deploy"
        assert payload["workers"] == 2
        assert payload["restarts"] == {"0": 0, "1": 0}
        assert RUN_SCHEMA_KEYS <= set(payload)
        assert len(payload["per_period"]) == 4

    def test_deploy_rejects_malformed_chaos_spec(self):
        with pytest.raises(SystemExit):
            main(["deploy", "--chaos-kill", "nonsense"])


class TestTraceCli:
    """``repro deploy --trace`` + ``repro trace`` merge and gate."""

    def _deploy(self, rundir, trace_out):
        rc = main(
            [
                "deploy",
                "--nodes", "12", "--tasks", "3", "--pool", "6",
                "--workers", "2", "--periods", "3", "--period-seconds", "0.05",
                "--seed", "4", "--rundir", str(rundir),
                "--trace", str(trace_out), "--json",
            ]
        )
        assert rc == 0

    def test_deploy_trace_merges_children_into_export(self, tmp_path, capsys):
        rundir, trace_out = tmp_path / "run", tmp_path / "deploy.trace.json"
        self._deploy(rundir, trace_out)
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["trace_files"]) == 3  # collector + 2 workers
        events = json.loads(trace_out.read_text())["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len({e["pid"] for e in spans}) >= 3

    def test_trace_subcommand_merges_and_summarizes(self, tmp_path, capsys):
        rundir = tmp_path / "run"
        self._deploy(rundir, tmp_path / "deploy.trace.json")
        capsys.readouterr()
        merged_path = tmp_path / "merged.trace.json"
        rc = main(
            ["trace", str(rundir), "--strict", "--json", "--out", str(merged_path)]
        )
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["problems"] == []
        assert [p["period"] for p in out["periods"]] == [0, 1, 2]
        for period in out["periods"]:
            assert period["processes"] >= 3
            assert period["cross_process_ms"] > 0
            assert period["critical_path"]
        assert json.loads(merged_path.read_text())["traceEvents"]

    def test_strict_fails_when_worker_spans_missing(self, tmp_path, capsys):
        rundir = tmp_path / "run"
        self._deploy(rundir, tmp_path / "deploy.trace.json")
        (rundir / "trace-worker-1.jsonl").unlink()
        capsys.readouterr()
        assert main(["trace", str(rundir), "--strict"]) == 1
        assert "worker-1" in capsys.readouterr().err

    def test_trace_on_empty_rundir_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 2
        assert "no trace-" in capsys.readouterr().err


def test_control_addresses_are_reserved_negative():
    assert CONTROL_ADDRESS_BASE < 0
    assert control_address(0) == CONTROL_ADDRESS_BASE
    assert control_address(3) < CONTROL_ADDRESS_BASE - 2
