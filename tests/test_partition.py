"""Unit tests for attribute-set partitions and merge/split operations."""

import pytest

from repro.core.partition import MergeOp, Partition, SplitOp


class TestConstruction:
    def test_singletons(self):
        part = Partition.singletons(["a", "b", "c"])
        assert len(part) == 3
        assert all(len(s) == 1 for s in part)

    def test_one_set(self):
        part = Partition.one_set(["a", "b", "c"])
        assert len(part) == 1
        assert part.universe == {"a", "b", "c"}

    def test_rejects_empty_sets(self):
        with pytest.raises(ValueError):
            Partition([set()])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            Partition([{"a", "b"}, {"b", "c"}])

    def test_rejects_empty_partition(self):
        with pytest.raises(ValueError):
            Partition([])

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            Partition.singletons([])

    def test_equality_is_canonical(self):
        assert Partition([{"a"}, {"b", "c"}]) == Partition([{"c", "b"}, {"a"}])
        assert hash(Partition([{"a"}, {"b"}])) == hash(Partition([{"b"}, {"a"}]))

    def test_set_of(self):
        part = Partition([{"a", "b"}, {"c"}])
        assert part.set_of("b") == {"a", "b"}
        with pytest.raises(KeyError):
            part.set_of("z")


class TestOperations:
    def test_merge_unions_two_sets(self):
        part = Partition([{"a"}, {"b"}, {"c"}])
        merged = part.merge(frozenset({"a"}), frozenset({"b"}))
        assert frozenset({"a", "b"}) in merged
        assert len(merged) == 2
        assert merged.universe == part.universe

    def test_merge_requires_member_sets(self):
        part = Partition([{"a"}, {"b"}])
        with pytest.raises(ValueError):
            part.merge(frozenset({"a"}), frozenset({"z"}))

    def test_merge_same_set_rejected(self):
        part = Partition([{"a"}, {"b"}])
        with pytest.raises(ValueError):
            part.merge(frozenset({"a"}), frozenset({"a"}))

    def test_split_carves_singleton(self):
        part = Partition([{"a", "b", "c"}])
        split = part.split(frozenset({"a", "b", "c"}), "b")
        assert frozenset({"b"}) in split
        assert frozenset({"a", "c"}) in split
        assert split.universe == part.universe

    def test_split_singleton_rejected(self):
        part = Partition([{"a"}, {"b"}])
        with pytest.raises(ValueError):
            part.split(frozenset({"a"}), "a")

    def test_split_missing_attribute_rejected(self):
        part = Partition([{"a", "b"}])
        with pytest.raises(ValueError):
            part.split(frozenset({"a", "b"}), "z")

    def test_apply_dispatches(self):
        part = Partition([{"a"}, {"b"}])
        merged = part.apply(MergeOp(frozenset({"a"}), frozenset({"b"})))
        assert len(merged) == 1
        back = merged.apply(SplitOp(frozenset({"a", "b"}), "a"))
        assert back == part


class TestNeighborhood:
    def test_neighbor_count_for_singletons(self):
        """k singletons: k*(k-1)/2 merges, no splits."""
        part = Partition.singletons(["a", "b", "c", "d"])
        ops = list(part.merge_ops())
        assert len(ops) == 6
        assert list(part.split_ops()) == []

    def test_split_count_for_one_set(self):
        part = Partition.one_set(["a", "b", "c"])
        assert len(list(part.split_ops())) == 3
        assert list(part.merge_ops()) == []

    def test_neighbors_are_valid_partitions(self):
        part = Partition([{"a", "b"}, {"c"}, {"d"}])
        for op, neighbor in part.neighbors():
            assert neighbor.universe == part.universe

    def test_restrict_to_filters_merges(self):
        part = Partition([{"a"}, {"b"}, {"c"}])
        anchor = {frozenset({"a"})}
        ops = list(part.merge_ops(restrict_to=anchor))
        assert len(ops) == 2
        assert all(op.left == frozenset({"a"}) or op.right == frozenset({"a"}) for op in ops)

    def test_forbidden_pairs_block_merge(self):
        """The SSDP constraint: an attribute and its alias never co-habit."""
        part = Partition([{"a"}, {"a#r1"}, {"b"}])
        forbidden = {frozenset({"a", "a#r1"})}
        ops = list(part.merge_ops(forbidden_pairs=forbidden))
        merged_sets = [op.left | op.right for op in ops]
        assert frozenset({"a", "a#r1"}) not in merged_sets
        assert len(ops) == 2

    def test_restrict_to_filters_splits(self):
        part = Partition([{"a", "b"}, {"c", "d"}])
        ops = list(part.split_ops(restrict_to={frozenset({"a", "b"})}))
        assert {op.attribute for op in ops} == {"a", "b"}
