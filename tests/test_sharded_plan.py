"""Collector sharding, multi-tenant namespaces, and the REMO36x checks."""

import pytest

from repro.checks.controlplane import check_collector_shards, check_tenant_namespaces
from repro.core.attributes import NodeAttributePair
from repro.core.plan import SHARD_MODES, ShardedPlan, shard_partition_sets
from repro.core.planner import RemoPlanner
from repro.core.tasks import (
    DuplicateTaskError,
    InvalidTenantError,
    MonitoringTask,
    MultiTenantTaskManager,
    UnknownTaskError,
    qualified_task_id,
)
from repro.workloads.presets import quickstart_workload


@pytest.fixture(scope="module")
def quickstart_plan():
    cluster, cost, tasks = quickstart_workload()
    plan = RemoPlanner(cost).plan(tasks, cluster)
    return cluster, cost, plan


class TestShardPartitionSets:
    def test_every_set_assigned_in_range(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        for mode in SHARD_MODES:
            assignment = shard_partition_sets(plan.partition.sets, 3, mode)
            assert set(assignment) == set(plan.partition.sets)
            assert all(0 <= shard < 3 for shard in assignment.values())

    def test_hash_mode_is_deterministic(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        first = shard_partition_sets(plan.partition.sets, 4, "hash")
        second = shard_partition_sets(plan.partition.sets, 4, "hash")
        assert first == second

    def test_range_mode_covers_all_shards_when_possible(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        sets = list(plan.partition.sets)
        shards = min(2, len(sets))
        assignment = shard_partition_sets(sets, shards, "range")
        assert set(assignment.values()) == set(range(shards))

    def test_single_shard_collapses_to_zero(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        assignment = shard_partition_sets(plan.partition.sets, 1, "hash")
        assert set(assignment.values()) == {0}

    def test_rejects_bad_inputs(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        with pytest.raises(ValueError):
            shard_partition_sets(plan.partition.sets, 0, "hash")
        with pytest.raises(ValueError):
            shard_partition_sets(plan.partition.sets, 2, "round-robin")


class TestShardedPlan:
    def test_pairs_partition_exactly(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 3)
        union = set()
        total = 0
        for shard in range(3):
            pairs = sharded.pairs_for(shard)
            total += len(pairs)
            union.update(pairs)
        assert union == set(plan.pairs)
        assert total == len(plan.pairs)  # disjoint: no pair counted twice

    def test_subplan_is_a_valid_fragment(self, quickstart_plan):
        cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 2)
        for shard in range(2):
            sub = sharded.subplan(shard)
            assert set(sub.pairs) == set(sharded.pairs_for(shard))
            assert set(sub.trees) == set(sharded.sets_for(shard))
            sub.validate(
                {n.node_id: n.capacity for n in cluster}, cluster.central_capacity
            )

    def test_central_usage_splits_across_shards(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 2)
        by_shard = sharded.central_usage_by_shard()
        assert sum(by_shard.values()) == pytest.approx(plan.central_usage())

    def test_summary_shape(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        summary = ShardedPlan.build(plan, 2, "range").summary()
        assert summary["shards"] == 2
        assert set(summary["sets_per_shard"]) == {"0", "1"}
        assert set(summary["pairs_per_shard"]) == {"0", "1"}
        assert sum(summary["central_usage"].values()) == pytest.approx(
            plan.central_usage()
        )

    def test_build_rejects_foreign_plan_pairing(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 2)
        assert sharded.plan is plan


class TestMultiTenantTaskManager:
    def _task(self, task_id="t", attrs=("a",), nodes=(1,)):
        return MonitoringTask(task_id, list(attrs), list(nodes))

    def test_duplicate_ids_scoped_per_tenant(self):
        manager = MultiTenantTaskManager()
        manager.add_task("alpha", self._task())
        # The same id under another tenant is fine...
        manager.add_task("beta", self._task())
        # ...but a duplicate within one tenant is rejected.
        with pytest.raises(DuplicateTaskError):
            manager.add_task("alpha", self._task())

    def test_global_delta_fires_on_first_and_last_tenant(self):
        manager = MultiTenantTaskManager()
        pair = NodeAttributePair(1, "a")
        first = manager.add_task("alpha", self._task())
        assert pair in first.added
        second = manager.add_task("beta", self._task())
        assert second.added == frozenset()  # already required by alpha
        assert manager.tenant_multiplicity(pair) == 2
        gone = manager.remove_task("alpha", "t")
        assert gone.removed == frozenset()  # beta still wants it
        last = manager.remove_task("beta", "t")
        assert pair in last.removed
        assert manager.pair_count() == 0

    def test_pairs_union_and_counts(self):
        manager = MultiTenantTaskManager()
        manager.add_task("alpha", self._task("t1", ("a",), (1,)))
        manager.add_task("beta", self._task("t2", ("b",), (2,)))
        assert manager.pairs() == {
            NodeAttributePair(1, "a"),
            NodeAttributePair(2, "b"),
        }
        assert manager.task_count() == 2
        assert manager.tenants() == ["alpha", "beta"]

    def test_rejects_separator_in_names(self):
        manager = MultiTenantTaskManager()
        with pytest.raises(InvalidTenantError):
            manager.add_task("bad/tenant", self._task())
        with pytest.raises(InvalidTenantError):
            manager.add_task("alpha", self._task("bad/task"))
        with pytest.raises(InvalidTenantError):
            manager.add_task("", self._task())

    def test_unknown_lookups_raise_with_qualified_id(self):
        manager = MultiTenantTaskManager()
        with pytest.raises(UnknownTaskError):
            manager.get("ghost", "t")
        manager.add_task("alpha", self._task())
        with pytest.raises(UnknownTaskError):
            manager.remove_task("alpha", "missing")

    def test_drop_tenant_releases_pairs(self):
        manager = MultiTenantTaskManager()
        manager.add_task("alpha", self._task("t1", ("a",), (1,)))
        manager.add_task("alpha", self._task("t2", ("b",), (2,)))
        delta = manager.drop_tenant("alpha")
        assert delta.removed == {
            NodeAttributePair(1, "a"),
            NodeAttributePair(2, "b"),
        }
        assert not manager.has_tenant("alpha")
        # Dropping a tenant that never existed is a no-op.
        assert manager.drop_tenant("ghost").removed == frozenset()

    def test_qualified_task_id(self):
        assert qualified_task_id("alpha", "t1") == "alpha/t1"


class TestCollectorShardChecks:
    def test_clean_layout_passes(self, quickstart_plan):
        cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 2)
        report = check_collector_shards(
            plan, sharded.assignment, 2, central_capacity=cluster.central_capacity
        )
        assert not report.has_errors

    def test_missing_set_is_remo361(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 2)
        broken = dict(sharded.assignment)
        broken.pop(next(iter(broken)))
        report = check_collector_shards(plan, broken, 2)
        assert any(d.code == "REMO361" for d in report.errors)

    def test_out_of_range_shard_is_remo361(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        sharded = ShardedPlan.build(plan, 2)
        broken = dict(sharded.assignment)
        broken[next(iter(broken))] = 7
        report = check_collector_shards(plan, broken, 2)
        assert any(d.code == "REMO361" for d in report.errors)

    def test_overloaded_shard_is_remo362(self, quickstart_plan):
        _cluster, _cost, plan = quickstart_plan
        # Everything on shard 0 with a tiny central budget must trip
        # the per-shard capacity check.
        assignment = {attr_set: 0 for attr_set in plan.trees}
        report = check_collector_shards(plan, assignment, 2, central_capacity=1.0)
        assert any(d.code == "REMO362" for d in report.errors)
        # ...and the deliberately empty shard 1 warns.
        assert any(d.code == "REMO363" for d in report.warnings)


class TestTenantNamespaceChecks:
    def test_clean_namespaces_pass(self):
        report = check_tenant_namespaces(
            {"alpha": [MonitoringTask("t", ["a"], [1])]}
        )
        assert not report.has_errors
        assert not report.warnings

    def test_separator_and_empty_names_are_remo364(self):
        report = check_tenant_namespaces(
            {
                "bad/tenant": [MonitoringTask("t", ["a"], [1])],
                "": [MonitoringTask("t", ["a"], [1])],
                "gamma": [MonitoringTask("x/y", ["a"], [1])],
            }
        )
        codes = [d.code for d in report.errors]
        assert codes.count("REMO364") >= 3

    def test_empty_tenant_is_remo365(self):
        report = check_tenant_namespaces({"alpha": []})
        assert any(d.code == "REMO365" for d in report.warnings)
