"""Tests for ASCII rendering of trees and plans."""

from repro.analysis.render import render_plan, render_tree
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.trees.model import MonitoringTree

COST = CostModel(2.0, 1.0)


def small_tree():
    tree = MonitoringTree(("a",), COST, {i: 100.0 for i in range(4)}, 500.0)
    tree.add_node(0, None, {"a": 1.0})
    tree.add_node(1, 0, {"a": 1.0})
    tree.add_node(2, 0, {"a": 1.0})
    tree.add_node(3, 1, {"a": 1.0})
    return tree


class TestRenderTree:
    def test_contains_every_node(self):
        text = render_tree(small_tree())
        for node in range(4):
            assert f"\n" in text
            assert str(node) in text

    def test_indentation_reflects_depth(self):
        text = render_tree(small_tree())
        lines = text.splitlines()
        root_line = next(l for l in lines if l.strip().startswith("0 "))
        deep_line = next(l for l in lines if l.strip().startswith("3 "))
        assert len(deep_line) - len(deep_line.lstrip()) > len(root_line) - len(
            root_line.lstrip()
        )

    def test_header_summarizes(self):
        text = render_tree(small_tree())
        assert "nodes=4" in text
        assert "height=2" in text

    def test_truncation(self):
        tree = MonitoringTree(("a",), COST, {i: 1e6 for i in range(30)}, 1e9)
        tree.add_node(0, None, {"a": 1.0})
        for i in range(1, 30):
            tree.add_node(i, 0, {"a": 1.0})
        text = render_tree(tree, max_nodes=5)
        assert "more nodes" in text

    def test_empty_tree(self):
        tree = MonitoringTree(("a",), COST, {}, 1.0)
        assert render_tree(tree) == "(empty tree)"


class TestRenderPlan:
    def test_plan_overview(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = ForestBuilder(COST).build(Partition([{"a"}, {"b"}]), pairs, small_cluster)
        text = render_plan(plan)
        assert "coverage=" in text
        assert text.count("[") >= 2  # one line per tree

    def test_plan_truncates_trees(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b", "c"])
        plan = ForestBuilder(COST).build(
            Partition.singletons(["a", "b", "c"]), pairs, small_cluster
        )
        text = render_plan(plan, max_trees=1)
        assert "more trees" in text
