"""Fast regression net for the paper's qualitative relationships.

Miniature versions of the figure benchmarks (seconds, not minutes):
each pins one relationship the full benches measure at scale, so a
regression in planner or builder behaviour fails the *test* suite, not
just the slow benchmark run.
"""

import pytest

from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.trees.chain import ChainTreeBuilder
from repro.trees.star import StarTreeBuilder
from repro.workloads.tasks import TaskSampler

HEAVY = CostModel(per_message=20.0, per_value=1.0)


@pytest.fixture(scope="module")
def arena():
    cluster = make_uniform_cluster(
        n_nodes=40,
        capacity=400.0,
        attrs_per_node=10,
        attribute_pool=default_attribute_pool(20),
        central_capacity=500.0,
        seed=3,
    )
    sampler = TaskSampler(cluster, seed=4)
    return cluster, sampler


def coverages(tasks, cluster, remo_kwargs=None):
    remo = RemoPlanner(HEAVY, candidate_budget=4, max_iterations=10, **(remo_kwargs or {}))
    return {
        "remo": remo.plan(tasks, cluster).coverage(),
        "sp": SingletonSetPlanner(HEAVY).plan(tasks, cluster).coverage(),
        "op": OneSetPlanner(HEAVY).plan(tasks, cluster).coverage(),
    }


class TestFig5Shapes:
    def test_remo_dominates_small_tasks(self, arena):
        cluster, sampler = arena
        tasks = sampler.sample_many(10, (1, 3), (5, 15), prefix="s-")
        cov = coverages(tasks, cluster)
        assert cov["remo"] >= max(cov["sp"], cov["op"]) - 1e-9

    def test_remo_dominates_large_tasks(self, arena):
        cluster, sampler = arena
        tasks = sampler.sample_many(8, (5, 9), (20, 36), prefix="l-")
        cov = coverages(tasks, cluster)
        assert cov["remo"] >= max(cov["sp"], cov["op"]) - 1e-9

    def test_sp_beats_op_under_heavy_load(self, arena):
        """Fig 5b/5d: the single tree saturates first."""
        cluster, sampler = arena
        tasks = sampler.sample_many(10, (6, 10), (25, 36), prefix="h-")
        cov = coverages(tasks, cluster)
        assert cov["sp"] >= cov["op"] - 1e-9


class TestFig6Shapes:
    def test_growing_overhead_hits_sp_hardest(self, arena):
        """Fig 6c: SP's retained coverage shrinks faster in C/a."""
        cluster, sampler = arena
        tasks = sampler.sample_many(10, (1, 3), (5, 15), prefix="c-")
        cheap = CostModel(2.0, 1.0)
        pricey = CostModel(40.0, 1.0)
        sp_cheap = SingletonSetPlanner(cheap).plan(tasks, cluster).coverage()
        sp_pricey = SingletonSetPlanner(pricey).plan(tasks, cluster).coverage()
        op_cheap = OneSetPlanner(cheap).plan(tasks, cluster).coverage()
        op_pricey = OneSetPlanner(pricey).plan(tasks, cluster).coverage()
        sp_retained = sp_pricey / max(sp_cheap, 1e-9)
        op_retained = op_pricey / max(op_cheap, 1e-9)
        assert sp_retained <= op_retained + 0.05


class TestFig7Shapes:
    def test_adaptive_builder_at_least_matches_star_and_chain(self, arena):
        cluster, sampler = arena
        tasks = sampler.sample_many(10, (2, 4), (15, 30), prefix="b-")
        results = {}
        for name, cls in [
            ("adaptive", AdaptiveTreeBuilder),
            ("star", StarTreeBuilder),
            ("chain", ChainTreeBuilder),
        ]:
            planner = SingletonSetPlanner(HEAVY, tree_builder=cls(HEAVY))
            results[name] = planner.plan(tasks, cluster).coverage()
        assert results["adaptive"] >= results["star"] - 0.01
        assert results["adaptive"] >= results["chain"] - 0.01


class TestFig12Shapes:
    def test_aggregation_awareness_never_hurts(self, arena):
        from repro.core.cost import AggregationKind
        from repro.ext.aggregation import uniform_aggregation

        cluster, sampler = arena
        tasks = sampler.sample_many(10, (2, 4), (15, 30), prefix="g-")
        attrs = sorted({a for t in tasks for a in t.attributes})
        agg = uniform_aggregation(attrs, AggregationKind.MAX)
        base = coverages(tasks, cluster)["remo"]
        aware = coverages(tasks, cluster, remo_kwargs={"aggregation": agg})["remo"]
        assert aware >= base - 1e-9
