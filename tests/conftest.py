"""Shared fixtures for the REMO reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.cluster.node import Cluster, SimNode
from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.tasks import MonitoringTask


@pytest.fixture
def cost():
    """The default C=2, a=1 cost model."""
    return CostModel(per_message=2.0, per_value=1.0)


@pytest.fixture
def heavy_cost():
    """A high-overhead model (C/a = 10), the paper's realistic regime."""
    return CostModel(per_message=10.0, per_value=1.0)


@pytest.fixture
def small_cluster():
    """Six nodes, generous capacity, everyone observes a, b, c."""
    nodes = [
        SimNode(node_id=i, capacity=100.0, attributes=frozenset({"a", "b", "c"}))
        for i in range(6)
    ]
    return Cluster(nodes, central_capacity=500.0)


@pytest.fixture
def tight_cluster():
    """Twenty nodes with tight capacity: plans cannot collect everything."""
    nodes = [
        SimNode(node_id=i, capacity=14.0, attributes=frozenset({"a", "b", "c", "d"}))
        for i in range(20)
    ]
    return Cluster(nodes, central_capacity=60.0)


@pytest.fixture
def medium_cluster():
    """Forty nodes with random attribute subsets from a pool of 12."""
    return make_uniform_cluster(
        n_nodes=40,
        capacity=80.0,
        attrs_per_node=6,
        attribute_pool=default_attribute_pool(12),
        central_capacity=1500.0,
        seed=17,
    )


@pytest.fixture
def rng():
    return random.Random(1234)


def make_task(task_id="t", attrs=("a",), nodes=(0, 1), frequency=1.0):
    """Terse task constructor for tests."""
    return MonitoringTask(task_id, attrs, nodes, frequency=frequency)


@pytest.fixture
def task_factory():
    return make_task
