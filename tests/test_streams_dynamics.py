"""Dynamics tests for the stream substrate: rate propagation, queueing,
burstiness, and OS gauge coupling."""

import pytest

from repro.streams.app import StreamApp
from repro.streams.dataflow import DataflowGraph
from repro.streams.operators import Operator, OperatorKind


def pipeline_app(selectivity=0.5, service_rate=10_000.0, seed=3):
    graph = DataflowGraph()
    graph.add_operator(
        Operator("src", OperatorKind.SOURCE, burst_calm=100.0, burst_peak=1000.0)
    )
    graph.add_operator(
        Operator("mid", OperatorKind.FUNCTOR, selectivity=selectivity, service_rate=service_rate)
    )
    graph.add_operator(Operator("out", OperatorKind.SINK, service_rate=service_rate))
    graph.connect("src", "mid")
    graph.connect("mid", "out")
    return StreamApp(graph, {"src": 0, "mid": 0, "out": 1}, seed=seed)


class TestRatePropagation:
    def test_selectivity_scales_downstream_rate(self):
        app = pipeline_app(selectivity=0.5)
        for _ in range(10):
            app.step()
        mid = app.graph.operator("mid")
        assert mid.rate_out == pytest.approx(mid.rate_in * 0.5, rel=1e-6)

    def test_sink_receives_what_mid_emits(self):
        app = pipeline_app()
        app.step()
        assert app.graph.operator("out").rate_in == pytest.approx(
            app.graph.operator("mid").rate_out
        )

    def test_slow_operator_accumulates_queue(self):
        app = pipeline_app(service_rate=10.0)
        for _ in range(20):
            app.step()
        assert app.graph.operator("mid").queue > 0.0
        assert app.graph.operator("mid").cpu == pytest.approx(1.0)

    def test_burstiness_shows_in_rates(self):
        app = pipeline_app()
        rates = []
        for _ in range(300):
            app.step()
            rates.append(app.graph.operator("src").rate_out)
        assert max(rates) > 3 * min(r for r in rates if r > 0)

    def test_deterministic_given_seed(self):
        a1, a2 = pipeline_app(seed=11), pipeline_app(seed=11)
        for _ in range(20):
            a1.step()
            a2.step()
        assert a1.graph.operator("mid").rate_in == pytest.approx(
            a2.graph.operator("mid").rate_in
        )


class TestOsGauges:
    def test_cpu_tracks_operator_load(self):
        app = pipeline_app(service_rate=10.0)  # saturated mid
        for _ in range(10):
            app.step()
        loaded = app.metric_value(0, "os.cpu")
        idle_app = pipeline_app(service_rate=1e9)
        for _ in range(10):
            idle_app.step()
        # Node 0 hosts the saturated operator: visibly hotter.
        assert loaded > idle_app.metric_value(0, "os.cpu") * 0.8

    def test_net_counters_match_rates(self):
        app = pipeline_app()
        app.step()
        mid = app.graph.operator("mid")
        src = app.graph.operator("src")
        assert app.metric_value(0, "os.net_in") == pytest.approx(
            mid.rate_in + src.rate_in
        )

    def test_all_os_metrics_present(self):
        app = pipeline_app()
        from repro.streams.app import OS_METRICS

        for metric in OS_METRICS:
            assert isinstance(app.metric_value(0, metric), float)
