"""Unit tests for runtime topology adaptation (Section 4)."""

import pytest

from repro.core.adaptation import (
    AdaptationStrategy,
    AdaptiveMonitoringService,
)
from repro.core.allocation import AllocationPolicy
from repro.core.cost import CostModel
from repro.core.tasks import MonitoringTask

COST = CostModel(per_message=4.0, per_value=1.0)


def service(cluster, strategy, **kwargs):
    return AdaptiveMonitoringService(cluster, COST, strategy=strategy, **kwargs)


def initial_tasks():
    return [
        MonitoringTask("t0", ["a", "b"], range(6)),
        MonitoringTask("t1", ["b", "c"], range(3, 6)),
    ]


class TestLifecycle:
    @pytest.mark.parametrize("strategy", list(AdaptationStrategy))
    def test_initialize_builds_a_plan(self, small_cluster, strategy):
        svc = service(small_cluster, strategy)
        report = svc.initialize(initial_tasks(), now=0.0)
        assert svc.plan is not None
        assert report.collected_pairs > 0
        assert report.adaptation_messages == len(svc.plan.assignments())

    @pytest.mark.parametrize("strategy", list(AdaptationStrategy))
    def test_add_task_extends_coverage(self, small_cluster, strategy):
        svc = service(small_cluster, strategy)
        svc.initialize(initial_tasks(), now=0.0)
        before = svc.plan.requested_pair_count()
        report = svc.apply_changes(
            [("add", MonitoringTask("t2", ["c"], range(6)))], now=1.0
        )
        assert report.requested_pairs > before
        svc.plan.validate(
            {n.node_id: n.capacity for n in small_cluster},
            small_cluster.central_capacity,
        )

    @pytest.mark.parametrize("strategy", list(AdaptationStrategy))
    def test_remove_all_tasks_clears_plan(self, small_cluster, strategy):
        svc = service(small_cluster, strategy)
        svc.initialize(initial_tasks(), now=0.0)
        report = svc.apply_changes(
            [("remove", t) for t in initial_tasks()], now=1.0
        )
        assert svc.plan is None
        assert report.requested_pairs == 0

    def test_modify_task_changes_pairs(self, small_cluster):
        svc = service(small_cluster, AdaptationStrategy.ADAPTIVE)
        svc.initialize(initial_tasks(), now=0.0)
        report = svc.apply_changes(
            [("modify", MonitoringTask("t0", ["a"], range(6)))], now=1.0
        )
        attrs = {p.attribute for p in svc.plan.pairs}
        assert attrs == {"a", "b", "c"}


class TestStrategyDifferences:
    def test_direct_apply_keeps_untouched_trees(self, small_cluster):
        svc = service(small_cluster, AdaptationStrategy.DIRECT_APPLY)
        svc.initialize(initial_tasks(), now=0.0)
        untouched = {
            s: r for s, r in svc.plan.trees.items() if "a" not in s and "d" not in s
        }
        svc.apply_changes([("add", MonitoringTask("t9", ["a", "d"], range(6)))], now=1.0)
        for attr_set, result in untouched.items():
            if attr_set in svc.plan.trees:
                assert svc.plan.trees[attr_set] is result

    def test_direct_apply_cheapest_adaptation(self, medium_cluster):
        tasks = [
            MonitoringTask("t0", ["attr00", "attr01"], range(20)),
            MonitoringTask("t1", ["attr02", "attr03"], range(10, 30)),
        ]
        change = [("modify", MonitoringTask("t0", ["attr00", "attr04"], range(20)))]
        costs = {}
        for strategy in (AdaptationStrategy.DIRECT_APPLY, AdaptationStrategy.REBUILD):
            svc = service(medium_cluster, strategy)
            svc.initialize(tasks, now=0.0)
            report = svc.apply_changes(change, now=1.0)
            costs[strategy] = report.adaptation_messages
        assert costs[AdaptationStrategy.DIRECT_APPLY] <= costs[AdaptationStrategy.REBUILD]

    def test_throttling_reduces_or_equals_applied_ops(self, medium_cluster):
        tasks = [
            MonitoringTask("t0", ["attr00", "attr01"], range(20)),
            MonitoringTask("t1", ["attr02", "attr03"], range(10, 30)),
        ]
        change = [("modify", MonitoringTask("t0", ["attr00", "attr05"], range(20)))]
        applied = {}
        for strategy in (AdaptationStrategy.NO_THROTTLE, AdaptationStrategy.ADAPTIVE):
            svc = service(medium_cluster, strategy)
            svc.initialize(tasks, now=0.0)
            # Apply the same change immediately: ADAPTIVE should hesitate
            # on fresh trees (T_adj == now => threshold 0).
            report = svc.apply_changes(change, now=0.0)
            applied[strategy] = len(report.applied_ops)
        assert applied[AdaptationStrategy.ADAPTIVE] <= applied[AdaptationStrategy.NO_THROTTLE]

    def test_adaptive_applies_after_stability(self, medium_cluster):
        """Once trees have been stable for long, worthwhile ops pass."""
        svc = service(medium_cluster, AdaptationStrategy.ADAPTIVE)
        svc.initialize(
            [
                MonitoringTask("t0", ["attr00", "attr01"], range(20)),
                MonitoringTask("t1", ["attr02"], range(20)),
            ],
            now=0.0,
        )
        report = svc.apply_changes(
            [("modify", MonitoringTask("t1", ["attr01"], range(20)))], now=1000.0
        )
        assert report.requested_pairs > 0  # plan stays live
        svc.plan.validate(
            {n.node_id: n.capacity for n in medium_cluster},
            medium_cluster.central_capacity,
        )


class TestConfiguration:
    def test_requires_sequential_allocation(self, small_cluster):
        with pytest.raises(ValueError):
            AdaptiveMonitoringService(
                small_cluster, COST, allocation=AllocationPolicy.UNIFORM
            )

    def test_reports_carry_strategy(self, small_cluster):
        svc = service(small_cluster, AdaptationStrategy.REBUILD)
        report = svc.initialize(initial_tasks(), now=0.0)
        assert report.strategy is AdaptationStrategy.REBUILD
        assert report.coverage > 0
