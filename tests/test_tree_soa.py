"""Struct-of-arrays kernels: numpy path vs stdlib fallback parity.

The flat-column tree state (``_cap_a``/``_send_a``/``_recv_a`` plus
the maintained ``_tot_a``/``_depth_a``) backs two implementations of
the bulk headroom kernels: a vectorized numpy path and a pure
stdlib-array loop.  They perform the same IEEE operations, so every
observable output -- viable parent sets, built trees, whole plans --
must be bit-identical whichever is active.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.trees import model as tree_model
from repro.workloads.tasks import TaskSampler

COST = CostModel(per_message=20.0, per_value=1.0)


def _workload(n: int, seed: int = 1):
    cluster = make_uniform_cluster(
        n_nodes=n,
        capacity=400.0,
        attrs_per_node=16,
        attribute_pool=default_attribute_pool(32),
        central_capacity=1200.0,
        seed=seed,
    )
    tasks = TaskSampler(cluster, seed=seed + 1).sample_many(
        n, (2, 5), (max(5, n // 6), max(6, n // 2))
    )
    return cluster, tasks


def _plan_fingerprint(n: int, seed: int) -> str:
    cluster, tasks = _workload(n, seed)
    plan, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
    for result in plan.trees.values():
        result.tree.validate()
    return plan.fingerprint()


@pytest.mark.skipif(tree_model._np is None, reason="numpy not installed")
class TestNumpyFallbackParity:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_plans_bit_identical_without_numpy(self, seed, monkeypatch):
        with_np = _plan_fingerprint(60, seed)
        monkeypatch.setattr(tree_model, "_np", None)
        without_np = _plan_fingerprint(60, seed)
        assert with_np == without_np

    def test_viable_parent_kernels_agree(self, monkeypatch):
        cluster, tasks = _workload(40)
        plan, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        trees = [r.tree for r in plan.trees.values() if len(r.tree) >= 2]
        assert trees, "expected at least one populated tree"
        for tree in trees:
            for bar in (0.0, 5.0, 50.0):
                vec = sorted(tree.viable_parents(bar))
                vec_stats = sorted(tree.viable_parent_stats(bar))
                monkeypatch.setattr(tree_model, "_np", None)
                scalar = sorted(tree.viable_parents(bar))
                scalar_stats = sorted(tree.viable_parent_stats(bar))
                assert tree.viable_parent_arrays(bar) is None
                monkeypatch.undo()
                assert vec == scalar
                assert vec_stats == scalar_stats

    def test_viable_parent_arrays_matches_stats(self):
        cluster, tasks = _workload(40)
        plan, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        tree = max((r.tree for r in plan.trees.values()), key=len)
        if len(tree) < tree_model._NUMPY_MIN_NODES:
            pytest.skip("tree below the numpy kernel threshold")
        arrays = tree.viable_parent_arrays(1.0)
        assert arrays is not None
        nodes, depths, avail = arrays
        stats = {n: (d, a) for n, d, a in tree.viable_parent_stats(1.0)}
        assert set(nodes) == set(stats)
        for node, depth, av in zip(nodes, depths.tolist(), avail.tolist()):
            assert depth == stats[node][0]
            assert av == stats[node][1]


class TestSlotColumns:
    def test_released_slots_are_poisoned_and_recycled(self):
        tree = tree_model.MonitoringTree(
            attributes={"a"},
            cost_model=COST,
            capacities={i: 100.0 for i in range(5)},
            central_capacity=500.0,
        )
        assert tree.add_node(0, None, {"a": 1.0})
        assert tree.add_node(1, 0, {"a": 1.0})
        slot1 = tree._slot[1]
        tree.remove_branch(1)
        assert tree._cap_a[slot1] == -float("inf")
        assert tree._node_of[slot1] == -1
        # 1e9 headroom can never pass against a poisoned slot.
        assert 1 not in tree.viable_parents(0.0)
        assert tree.add_node(2, 0, {"a": 1.0})
        assert tree._slot[2] == slot1  # LIFO recycling
        tree.validate()

    def test_maintained_columns_survive_restructuring(self):
        """Exercise move_branch + update_local, then let the recompute
        oracle cross-check the maintained total/depth columns."""
        cluster, tasks = _workload(30, seed=3)
        plan, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        tree = max((r.tree for r in plan.trees.values()), key=len)
        nodes = tree.nodes
        # A legal local update at the deepest node, then validate.
        leaf = max(nodes, key=tree.depth)
        demand = dict(tree.local_demand(leaf))
        if demand:
            attr, w = next(iter(demand.items()))
            demand[attr] = w  # no-op rewrite still walks the commit path
            assert tree.update_local(leaf, demand)
        tree.validate()
