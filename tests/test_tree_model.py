"""Unit tests for the monitoring tree data structure.

These exercise the paper's Problem Statement 2 bookkeeping: y_i
(subtree value counts), send/recv costs under C + a*x, capacity
feasibility along the path to the collector, and branch moves.
"""

import math

import pytest

from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.trees.model import MonitoringTree, TreeInvariantError

COST = CostModel(per_message=2.0, per_value=1.0)


def make_tree(capacities=None, central=math.inf, attrs=("a",), aggregation=None):
    caps = capacities if capacities is not None else {i: 100.0 for i in range(10)}
    return MonitoringTree(
        attributes=attrs,
        cost_model=COST,
        capacities=caps,
        central_capacity=central,
        aggregation=aggregation,
    )


def chain_tree(n, capacities=None, central=math.inf):
    """0 <- 1 <- 2 ... (node 0 is root)."""
    tree = make_tree(capacities, central)
    tree.add_node(0, None, {"a": 1.0})
    for i in range(1, n):
        assert tree.add_node(i, i - 1, {"a": 1.0})
    return tree


class TestStructure:
    def test_first_node_is_root(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        assert tree.root == 0
        assert tree.depth(0) == 0
        assert tree.parent(0) is None

    def test_second_root_rejected(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        with pytest.raises(ValueError):
            tree.add_node(1, None, {"a": 1.0})

    def test_duplicate_node_rejected(self):
        tree = chain_tree(2)
        with pytest.raises(ValueError):
            tree.add_node(1, 0, {"a": 1.0})

    def test_unknown_parent_rejected(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        with pytest.raises(ValueError):
            tree.add_node(1, 99, {"a": 1.0})

    def test_foreign_attribute_rejected(self):
        tree = make_tree(attrs=("a",))
        with pytest.raises(ValueError):
            tree.add_node(0, None, {"z": 1.0})

    def test_depth_and_height(self):
        tree = chain_tree(4)
        assert [tree.depth(i) for i in range(4)] == [0, 1, 2, 3]
        assert tree.height() == 3

    def test_children_and_degree(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        tree.add_node(2, 0, {"a": 1.0})
        assert tree.children(0) == {1, 2}
        assert tree.degree(0) == 2

    def test_subtree_nodes(self):
        tree = chain_tree(4)
        assert set(tree.subtree_nodes(1)) == {1, 2, 3}
        assert tree.subtree_size(0) == 4

    def test_edges_include_central(self):
        tree = chain_tree(2)
        assert (0, -1) in tree.edges()
        assert (1, 0) in tree.edges()


class TestCostBookkeeping:
    def test_leaf_send_cost(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        assert tree.send_cost(0) == pytest.approx(COST.message_cost(1))

    def test_chain_y_values_accumulate(self):
        """y_i = x_i + sum of children's y (Problem 2, constraint 2)."""
        tree = chain_tree(3)
        assert tree.outgoing_values(2) == pytest.approx(1.0)
        assert tree.outgoing_values(1) == pytest.approx(2.0)
        assert tree.outgoing_values(0) == pytest.approx(3.0)

    def test_recv_is_sum_of_child_messages(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        tree.add_node(2, 0, {"a": 1.0})
        assert tree.recv_cost(0) == pytest.approx(2 * COST.message_cost(1))

    def test_used_is_send_plus_recv(self):
        tree = chain_tree(3)
        assert tree.used(1) == pytest.approx(tree.send_cost(1) + tree.recv_cost(1))

    def test_central_used_is_root_message(self):
        tree = chain_tree(3)
        assert tree.central_used() == pytest.approx(COST.message_cost(3))

    def test_total_message_cost(self):
        tree = chain_tree(3)
        expected = sum(tree.send_cost(i) for i in range(3))
        assert tree.total_message_cost() == pytest.approx(expected)

    def test_pair_count(self):
        tree = make_tree(attrs=("a", "b"))
        tree.add_node(0, None, {"a": 1.0, "b": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        assert tree.pair_count() == 3


class TestCapacityEnforcement:
    def test_attach_rejected_when_parent_overflows(self):
        # Parent capacity 10: send (C + 2a) + one child (C + a) = 4 + 3 + growth...
        caps = {0: 8.0, 1: 100.0, 2: 100.0}
        tree = make_tree(caps)
        tree.add_node(0, None, {"a": 1.0})
        assert tree.add_node(1, 0, {"a": 1.0})  # 0: send 4 + recv 3 = 7 <= 8
        assert not tree.add_node(2, 0, {"a": 1.0})  # would make 0 use 11
        assert 2 not in tree

    def test_attach_rejected_when_ancestor_overflows(self):
        """Relay growth along the whole path is checked, not just the parent."""
        caps = {0: 7.5, 1: 100.0, 2: 100.0}
        tree = make_tree(caps)
        tree.add_node(0, None, {"a": 1.0})
        assert tree.add_node(1, 0, {"a": 1.0})
        # attaching to 1: root recv grows by a, send grows by a.
        assert not tree.add_node(2, 1, {"a": 1.0})

    def test_new_node_own_capacity_checked(self):
        caps = {0: 100.0, 1: 2.5}
        tree = make_tree(caps)
        tree.add_node(0, None, {"a": 1.0})
        assert not tree.add_node(1, 0, {"a": 1.0})  # 1's send cost 3 > 2.5

    def test_central_capacity_checked_for_root(self):
        tree = make_tree(central=2.5)
        assert not tree.add_node(0, None, {"a": 1.0})  # message cost 3 > 2.5

    def test_central_capacity_checked_on_growth(self):
        tree = make_tree(central=3.5)
        tree.add_node(0, None, {"a": 1.0})  # root message cost 3
        assert not tree.add_node(1, 0, {"a": 1.0})  # root message would cost 4

    def test_can_add_does_not_mutate(self):
        tree = chain_tree(2)
        before = tree.edges()
        assert tree.can_add_node(5, 0, {"a": 1.0})
        assert tree.edges() == before
        assert 5 not in tree


class TestBranchMoves:
    def test_move_branch_reparents_subtree(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        tree.add_node(2, 0, {"a": 1.0})
        tree.add_node(3, 2, {"a": 1.0})
        assert tree.move_branch(2, 1)
        assert tree.parent(2) == 1
        assert tree.depth(3) == 3
        tree.validate()

    def test_move_preserves_costs_consistency(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        for i in (1, 2, 3):
            tree.add_node(i, 0, {"a": 1.0})
        tree.move_branch(3, 1)
        tree.validate()
        # Root lost one message's overhead C but still relays 4 values.
        assert tree.outgoing_values(0) == pytest.approx(4.0)
        assert tree.recv_cost(0) == pytest.approx(
            COST.message_cost(1) + COST.message_cost(2)
        )

    def test_move_into_own_subtree_rejected(self):
        tree = chain_tree(3)
        with pytest.raises(ValueError):
            tree.move_branch(1, 2)

    def test_move_root_rejected(self):
        tree = chain_tree(2)
        with pytest.raises(ValueError):
            tree.move_branch(0, 1)

    def test_failed_move_rolls_back(self):
        caps = {0: 100.0, 1: 3.2, 2: 100.0}
        tree = make_tree(caps)
        tree.add_node(0, None, {"a": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        tree.add_node(2, 0, {"a": 1.0})
        # Moving 2 under 1 would push 1 to send C+2a=4 > 3.2.
        assert not tree.move_branch(2, 1)
        assert tree.parent(2) == 0
        tree.validate()

    def test_can_move_branch_is_side_effect_free(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        tree.add_node(2, 0, {"a": 1.0})
        edges = tree.edges()
        assert tree.can_move_branch(2, 1) in (True, False)
        assert tree.edges() == edges
        tree.validate()

    def test_remove_branch_returns_replayable_records(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 1.0})
        tree.add_node(1, 0, {"a": 1.0})
        tree.add_node(2, 1, {"a": 1.0})
        records = tree.remove_branch(1)
        assert [r[0] for r in records] == [1, 2]
        assert len(tree) == 1
        tree.validate()
        # Replay restores the branch.
        first = True
        for node, parent, demand, msgw in records:
            tree.add_node(node, 0 if first else parent, demand, msgw, check=False)
            first = False
        assert len(tree) == 3
        tree.validate()


class TestAggregationFunnels:
    def test_sum_tree_root_sends_one_value(self):
        agg = {"a": AggregationSpec(AggregationKind.SUM)}
        tree = make_tree(attrs=("a",), aggregation=agg)
        tree.add_node(0, None, {"a": 1.0})
        for i in range(1, 5):
            tree.add_node(i, 0, {"a": 1.0})
        assert tree.outgoing_values(0) == pytest.approx(1.0)
        tree.validate()

    def test_topk_caps_outgoing(self):
        agg = {"a": AggregationSpec(AggregationKind.TOP_K, k=2)}
        tree = make_tree(attrs=("a",), aggregation=agg)
        tree.add_node(0, None, {"a": 1.0})
        for i in range(1, 6):
            tree.add_node(i, 0, {"a": 1.0})
        assert tree.outgoing_values(0) == pytest.approx(2.0)
        tree.validate()

    def test_mixed_holistic_and_sum(self):
        agg = {"s": AggregationSpec(AggregationKind.SUM)}
        tree = make_tree(attrs=("s", "h"), aggregation=agg)
        tree.add_node(0, None, {"s": 1.0, "h": 1.0})
        tree.add_node(1, 0, {"s": 1.0, "h": 1.0})
        tree.add_node(2, 0, {"s": 1.0, "h": 1.0})
        # s funnels to 1, h stays holistic at 3.
        assert tree.outgoing_values(0) == pytest.approx(4.0)
        tree.validate()

    def test_aggregation_lets_bigger_trees_fit(self):
        caps = {i: 12.0 for i in range(20)}
        plain = make_tree(dict(caps), attrs=("a",))
        agg_tree = make_tree(
            dict(caps), attrs=("a",), aggregation={"a": AggregationSpec(AggregationKind.MAX)}
        )
        for tree in (plain, agg_tree):
            tree.add_node(0, None, {"a": 1.0})
            added = 1
            for i in range(1, 20):
                if tree.add_node(i, added - 1 if i >= len(tree) else 0, {"a": 1.0}):
                    added += 1
        assert len(agg_tree) > len(plain)


class TestFrequencyWeights:
    def test_fractional_weights_shrink_cost(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 0.5}, msg_weight=0.5)
        assert tree.send_cost(0) == pytest.approx(0.5 * COST.per_message + 0.5 * COST.per_value)

    def test_relay_message_weight_is_max_of_children(self):
        tree = make_tree()
        tree.add_node(0, None, {"a": 0.25}, msg_weight=0.25)
        tree.add_node(1, 0, {"a": 1.0}, msg_weight=1.0)
        assert tree.message_weight(0) == pytest.approx(1.0)
        tree.validate()


class TestValidation:
    def test_validate_catches_tampered_send(self):
        tree = chain_tree(3)
        tree._send_a[tree._slot[1]] += 1.0
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_validate_catches_capacity_violation(self):
        tree = chain_tree(3)
        tree.capacities = {i: 0.1 for i in range(10)}
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_empty_tree_validates(self):
        make_tree().validate()
