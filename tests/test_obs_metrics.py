"""Tests for the metrics registry and the sketching histogram."""

import random

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    default_registry,
    format_series,
    labels_key,
    use_registry,
)


class TestLabels:
    def test_labels_key_sorts_and_stringifies(self):
        assert labels_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_format_series_bare_and_labeled(self):
        assert format_series("up", ()) == "up"
        assert (
            format_series("up", (("node", "3"), ("tree", "t0")))
            == 'up{node="3",tree="t0"}'
        )


class TestRegistryCounters:
    def test_incr_and_total(self):
        reg = MetricsRegistry()
        reg.incr("messages_sent")
        reg.incr("messages_sent", 2, node=1)
        reg.incr("messages_sent", 3, node=2)
        assert reg.counter("messages_sent") == 1.0
        assert reg.counter("messages_sent", node=1) == 2.0
        assert reg.counter_total("messages_sent") == 6.0

    def test_counter_totals_collapse_labels(self):
        reg = MetricsRegistry()
        reg.incr("a", 1, node=1)
        reg.incr("a", 2, node=2)
        reg.incr("b", 5)
        assert reg.counter_totals() == {"a": 3.0, "b": 5.0}

    def test_counters_keyed_by_formatted_series(self):
        reg = MetricsRegistry()
        reg.incr("a", 1, node=1)
        assert reg.counters() == {'a{node="1"}': 1.0}

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 4.0, tree="t1")
        reg.set_gauge("depth", 2.0, tree="t1")
        assert reg.gauge("depth", tree="t1") == 2.0
        assert reg.gauge("missing") == 0.0

    def test_histogram_get_or_create(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", node=1)
        h2 = reg.histogram("lat", node=1)
        assert h1 is h2
        reg.observe("lat", 3.5, node=1)
        assert h1.count == 1

    def test_series_enumeration_and_clear(self):
        reg = MetricsRegistry()
        reg.incr("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 2.0)
        kinds = [kind for kind, _key in reg.series()]
        assert kinds == ["counter", "gauge", "histogram"]
        reg.clear()
        assert list(reg.series()) == []

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.incr("c", 2)
        reg.observe("h", 1.0)
        snap = reg.as_dict()
        assert snap["counters"] == {"c": 2.0}
        assert set(snap["histograms"]["h"]) == {"count", "mean", "p50", "p95", "max"}


class TestAmbientRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = default_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert default_registry() is scoped
            default_registry().incr("inside")
        assert default_registry() is outer
        assert scoped.counter_total("inside") == 1.0
        assert outer.counter_total("inside") == 0.0


class TestHistogramExact:
    def test_summary_on_known_values(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.quantile(0.5) == 2.5
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0
        assert h.is_exact

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert len(h) == 0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)
        with pytest.raises(ValueError):
            Histogram(sketch_threshold=10, reservoir_size=100)


class TestHistogramSketch:
    def test_switches_past_threshold_and_bounds_memory(self):
        h = Histogram(sketch_threshold=100, reservoir_size=50)
        for i in range(100):
            h.observe(float(i))
        assert h.is_exact
        h.observe(100.0)
        assert not h.is_exact
        for i in range(10_000):
            h.observe(float(i))
        assert len(h._values) == 50
        assert h.count == 10_101

    def test_exact_moments_survive_sketching(self):
        h = Histogram(sketch_threshold=100, reservoir_size=50)
        values = [float(i) for i in range(1000)]
        for v in values:
            h.observe(v)
        assert h.count == 1000
        assert h.sum == sum(values)
        assert h.min == 0.0
        assert h.max == 999.0

    def test_quantile_accuracy_uniform(self):
        # ~20k uniform draws: reservoir quantiles should land within a
        # few percent of the true quantiles.
        rng = random.Random(7)
        h = Histogram()  # defaults: threshold 4096, reservoir 1024
        for _ in range(20_000):
            h.observe(rng.uniform(0.0, 100.0))
        assert not h.is_exact
        assert abs(h.quantile(0.5) - 50.0) < 5.0
        assert abs(h.quantile(0.95) - 95.0) < 5.0

    def test_quantile_accuracy_skewed(self):
        rng = random.Random(11)
        h = Histogram()
        for _ in range(20_000):
            h.observe(rng.expovariate(1.0))
        # True exponential(1) median is ln 2 ~ 0.693.
        assert abs(h.quantile(0.5) - 0.693) < 0.15

    def test_reproducible_across_instances(self):
        def fill():
            h = Histogram(sketch_threshold=100, reservoir_size=50)
            for i in range(5000):
                h.observe(float(i % 997))
            return h

        a, b = fill(), fill()
        assert a.quantile(0.5) == b.quantile(0.5)
        assert a.quantile(0.95) == b.quantile(0.95)


class TestDumpAbsorb:
    """Cross-process merge edge cases (`repro deploy` / `repro serve`)."""

    def test_empty_registry_dump_and_absorb_roundtrip(self):
        empty = MetricsRegistry()
        dump = empty.dump()
        assert dump == {"counters": [], "gauges": [], "histograms": []}
        target = MetricsRegistry()
        target.absorb(dump)
        assert target.counters() == {}
        assert target.gauges() == {}
        assert target.histograms() == {}

    def test_absorb_empty_dump_leaves_target_untouched(self):
        target = MetricsRegistry()
        target.incr("ops", 3.0, op="add")
        target.set_gauge("depth", 2.0)
        target.observe("lat", 1.5)
        target.absorb(MetricsRegistry().dump())
        assert target.counters() == {'ops{op="add"}': 3.0}
        assert target.gauges() == {"depth": 2.0}
        assert target.histograms()["lat"].count == 1

    def test_absorb_empty_histogram_dump_is_a_noop(self):
        h = Histogram()
        h.observe(5.0)
        h.absorb(Histogram().dump())
        assert h.count == 1
        assert h.min == 5.0 and h.max == 5.0
        assert h.is_exact

    def test_absorb_into_nonempty_merges_by_label_set(self):
        # Matching label sets aggregate; distinct label sets stay
        # distinguishable as their own series.
        target = MetricsRegistry()
        target.incr("msgs", 2.0, node=1)
        target.incr("msgs", 5.0, node=2)
        target.set_gauge("period", 3.0, node=1)
        source = MetricsRegistry()
        source.incr("msgs", 10.0, node=1)
        source.incr("msgs", 1.0, node=3)
        source.set_gauge("period", 7.0, node=1)
        source.set_gauge("period", 4.0, node=3)
        target.absorb(source.dump())
        assert target.counters() == {
            'msgs{node="1"}': 12.0,
            'msgs{node="2"}': 5.0,
            'msgs{node="3"}': 1.0,
        }
        # Gauges: incoming value wins on collision, new series appear.
        assert target.gauges() == {
            'period{node="1"}': 7.0,
            'period{node="3"}': 4.0,
        }

    def test_histogram_merge_stays_exact_under_threshold(self):
        a = Histogram(sketch_threshold=100, reservoir_size=50)
        b = Histogram(sketch_threshold=100, reservoir_size=50)
        for i in range(40):
            a.observe(float(i))
        for i in range(40, 100):
            b.observe(float(i))
        a.absorb(b.dump())
        # 40 + 60 = 100 retained values: exactly at the threshold, so
        # the merge keeps every observation and quantiles stay exact.
        assert a.is_exact
        assert a.count == 100
        assert a.quantile(0.5) == pytest.approx(49.5)

    def test_histogram_merge_crosses_threshold_into_reservoir(self):
        a = Histogram(sketch_threshold=100, reservoir_size=50)
        b = Histogram(sketch_threshold=100, reservoir_size=50)
        for i in range(60):
            a.observe(float(i))
        for i in range(60):
            b.observe(float(i + 60))
        assert a.is_exact and b.is_exact
        a.absorb(b.dump())
        # 60 + 60 = 120 > threshold: the merge downsamples into the
        # reservoir.  Moments stay exact; quantiles become estimates.
        assert not a.is_exact
        assert a.count == 120
        assert len(a._values) == 50
        assert a.sum == sum(range(120))
        assert a.min == 0.0 and a.max == 119.0

    def test_absorbing_a_sketched_dump_forces_sketching(self):
        a = Histogram(sketch_threshold=100, reservoir_size=50)
        a.observe(1.0)
        b = Histogram(sketch_threshold=100, reservoir_size=50)
        for i in range(200):
            b.observe(float(i))
        assert not b.is_exact
        a.absorb(b.dump())
        # One exact value + a sketched dump can never be exact again,
        # even though the retained values fit under the threshold.
        assert not a.is_exact
        assert a.count == 201

    def test_registry_absorb_creates_missing_histogram_series(self):
        source = MetricsRegistry()
        for i in range(10):
            source.observe("lat", float(i), lane="serve")
        target = MetricsRegistry()
        target.absorb(source.dump())
        merged = target.histograms()['lat{lane="serve"}']
        assert merged.count == 10
        assert merged.quantile(0.5) == pytest.approx(4.5)
