"""Unit tests for reporting and statistics helpers."""

import math

import pytest

from repro.analysis.report import Series, format_table, print_series, print_table
from repro.analysis.stats import mean, percentile, relative_change


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_percentile_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)

    def test_percentile_single_value(self):
        assert percentile([7.0], 30) == 7.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_relative_change(self):
        assert relative_change(12.0, 10.0) == pytest.approx(0.2)
        assert relative_change(8.0, 10.0) == pytest.approx(-0.2)
        assert relative_change(0.0, 0.0) == 0.0
        assert math.isinf(relative_change(1.0, 0.0))


class TestReport:
    def test_format_table_aligns(self):
        text = format_table("demo", ["x", "y"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "x" in lines[1] and "y" in lines[1]
        assert len(lines) == 5

    def test_series_add(self):
        s = Series("remo")
        s.add(0.5)
        s.add(0.7)
        assert s.values == [0.5, 0.7]

    def test_print_series_shapes_rows(self, capsys):
        s1, s2 = Series("a", [1.0, 2.0]), Series("b", [3.0])
        print_series("fig", "n", [10, 20], [s1, s2])
        out = capsys.readouterr().out
        assert "fig" in out
        assert "nan" in out  # missing point padded

    def test_print_table(self, capsys):
        print_table("t", ["c"], [[1]])
        assert "== t ==" in capsys.readouterr().out

    def test_float_formatting(self):
        text = format_table("f", ["v"], [[0.123456]])
        assert "0.1235" in text
