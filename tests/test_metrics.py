"""Unit tests for ground-truth metric generators."""

import random

import pytest

from repro.cluster.metrics import (
    AR1Metric,
    BurstyMetric,
    ConstantNoiseMetric,
    MetricRegistry,
    RandomWalkMetric,
)
from repro.core.attributes import NodeAttributePair, pairs_for


class TestGenerators:
    def test_random_walk_stays_in_bounds(self):
        gen = RandomWalkMetric(initial=50.0, step=10.0, low=0.0, high=100.0)
        rng = random.Random(1)
        for _ in range(500):
            value = gen.advance(rng)
            assert 0.0 <= value <= 100.0

    def test_random_walk_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RandomWalkMetric(low=10.0, high=5.0)
        with pytest.raises(ValueError):
            RandomWalkMetric(step=0.0)

    def test_ar1_reverts_to_mean(self):
        gen = AR1Metric(mean=50.0, phi=0.5, sigma=0.0, initial=100.0)
        rng = random.Random(1)
        for _ in range(50):
            gen.advance(rng)
        assert gen.current == pytest.approx(50.0, abs=0.1)

    def test_ar1_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            AR1Metric(phi=1.0)

    def test_bursty_visits_both_regimes(self):
        gen = BurstyMetric(calm_level=10.0, burst_level=1000.0, p_enter_burst=0.3, p_exit_burst=0.3)
        rng = random.Random(2)
        values = [gen.advance(rng) for _ in range(500)]
        assert min(values) < 50.0
        assert max(values) > 500.0

    def test_bursty_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            BurstyMetric(p_enter_burst=1.5)

    def test_constant_noise_hovers(self):
        gen = ConstantNoiseMetric(level=20.0, sigma=0.1)
        rng = random.Random(3)
        values = [gen.advance(rng) for _ in range(200)]
        assert 19.0 < sum(values) / len(values) < 21.0


class TestRegistry:
    def test_one_generator_per_pair(self):
        pairs = pairs_for(range(4), ["a", "b"])
        registry = MetricRegistry(pairs, seed=1)
        assert len(registry) == 8
        for pair in pairs:
            assert pair in registry
            assert isinstance(registry.value(pair), float)

    def test_advance_changes_values_over_time(self):
        pairs = pairs_for(range(4), ["a"])
        registry = MetricRegistry(pairs, seed=1)
        before = {p: registry.value(p) for p in pairs}
        for _ in range(20):
            registry.advance_all()
        after = {p: registry.value(p) for p in pairs}
        assert any(abs(before[p] - after[p]) > 1e-9 for p in pairs)

    def test_deterministic_with_seed(self):
        pairs = sorted(pairs_for(range(3), ["a"]))
        r1 = MetricRegistry(pairs, seed=9)
        r2 = MetricRegistry(pairs, seed=9)
        for _ in range(10):
            r1.advance_all()
            r2.advance_all()
        for pair in pairs:
            assert r1.value(pair) == pytest.approx(r2.value(pair))

    def test_ensure_registers_lazily(self):
        registry = MetricRegistry([], seed=1)
        pair = NodeAttributePair(0, "late")
        assert pair not in registry
        registry.ensure(pair)
        assert pair in registry
        registry.ensure(pair)  # idempotent
        assert len(registry) == 1
