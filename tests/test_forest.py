"""Unit tests for the forest builder (resource-aware evaluation)."""

import pytest

from repro.core.allocation import AllocationPolicy
from repro.core.attributes import NodeAttributePair, pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition

COST = CostModel(2.0, 1.0)


def build(partition, pairs, cluster, **kwargs):
    allocation = kwargs.pop("allocation", AllocationPolicy.ORDERED)
    builder = ForestBuilder(COST, allocation=allocation, **kwargs)
    return builder.build(partition, pairs, cluster)


class TestBasicForest:
    def test_one_tree_per_partition_set(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = build(Partition([{"a"}, {"b"}]), pairs, small_cluster)
        assert plan.tree_count() == 2

    def test_full_coverage_with_generous_capacity(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b", "c"])
        plan = build(Partition.one_set(["a", "b", "c"]), pairs, small_cluster)
        assert plan.coverage() == pytest.approx(1.0)

    def test_partition_must_cover_pairs(self, small_cluster):
        pairs = pairs_for(range(3), ["a", "z"])
        with pytest.raises(ValueError):
            build(Partition([{"a"}]), pairs, small_cluster)

    def test_cross_tree_capacity_respected(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b", "c", "d"])
        plan = build(Partition.singletons(["a", "b", "c", "d"]), pairs, tight_cluster)
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )

    @pytest.mark.parametrize("policy", list(AllocationPolicy))
    def test_every_policy_yields_valid_plans(self, tight_cluster, policy):
        pairs = pairs_for(range(20), ["a", "b", "c"])
        plan = build(
            Partition([{"a"}, {"b", "c"}]), pairs, tight_cluster, allocation=policy
        )
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )

    def test_pair_weights_validated(self, small_cluster):
        pairs = pairs_for(range(2), ["a"])
        with pytest.raises(ValueError):
            ForestBuilder(COST).build(
                Partition([{"a"}]),
                pairs,
                small_cluster,
                pair_weights={NodeAttributePair(0, "a"): 2.0},
            )

    def test_pair_weights_reduce_traffic(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        partition = Partition([{"a"}])
        full = build(partition, pairs, small_cluster)
        slow = ForestBuilder(COST).build(
            partition,
            pairs,
            small_cluster,
            pair_weights={p: 0.5 for p in pairs},
            msg_weights={n: 0.5 for n in range(6)},
        )
        assert slow.total_message_cost() < full.total_message_cost()


class TestKeepSemantics:
    def test_kept_trees_are_carried_verbatim(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        partition = Partition([{"a"}, {"b"}])
        first = build(partition, pairs, small_cluster)
        kept = {frozenset({"a"}): first.trees[frozenset({"a"})]}
        second = ForestBuilder(COST).build(
            partition, pairs, small_cluster, keep=kept
        )
        assert second.trees[frozenset({"a"})] is kept[frozenset({"a"})]

    def test_keep_requires_sequential_allocation(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        partition = Partition([{"a"}])
        first = build(partition, pairs, small_cluster)
        with pytest.raises(ValueError):
            ForestBuilder(COST, allocation=AllocationPolicy.UNIFORM).build(
                partition, pairs, small_cluster, keep=dict(first.trees)
            )

    def test_keep_with_unknown_set_rejected(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        partition = Partition([{"a"}])
        first = build(partition, pairs, small_cluster)
        with pytest.raises(ValueError):
            ForestBuilder(COST).build(
                partition,
                pairs,
                small_cluster,
                keep={frozenset({"zzz"}): first.trees[frozenset({"a"})]},
            )

    def test_kept_usage_charged_before_new_trees(self, tight_cluster):
        """The dirty tree must fit in what the kept trees left over."""
        pairs = pairs_for(range(20), ["a", "b"])
        partition = Partition([{"a"}, {"b"}])
        first = build(partition, pairs, tight_cluster)
        kept = {frozenset({"a"}): first.trees[frozenset({"a"})]}
        second = ForestBuilder(COST).build(
            partition, pairs, tight_cluster, keep=kept
        )
        second.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )


class TestAllocationComparison:
    def test_ordered_at_least_as_good_as_uniform(self, tight_cluster):
        """Fig. 11's qualitative claim on constrained clusters."""
        pairs = pairs_for(range(20), ["a", "b", "c", "d"])
        partition = Partition([{"a"}, {"b"}, {"c", "d"}])
        ordered = build(
            partition, pairs, tight_cluster, allocation=AllocationPolicy.ORDERED
        )
        uniform = build(
            partition, pairs, tight_cluster, allocation=AllocationPolicy.UNIFORM
        )
        assert ordered.collected_pair_count() >= uniform.collected_pair_count()
