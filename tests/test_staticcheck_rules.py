"""Every REMO4xx rule fires on its bait fixture and stays quiet on the
clean one (``tests/staticcheck_fixtures/``).

Fixtures are linted with only the rule under test enabled, rooted at
the repo so the obs manifest (``src/repro/obs/names.py``) is available
to the REMO43x rules.  A meta-test pins the registry to the fixture
map, so adding a rule without fixtures fails loudly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.staticcheck import (
    SYNTAX_ERROR_CODE,
    all_rule_classes,
    describe_rules,
    lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "staticcheck_fixtures"

#: code -> (bait fixture, clean fixture); REMO400 is runner-emitted and
#: exercised separately on a generated broken file.
RULE_FIXTURES = {
    "REMO401": ("remo401_bad.py", "remo401_ok.py"),
    "REMO402": ("remo402_bad.py", "remo402_ok.py"),
    "REMO403": ("remo403_bad.py", "remo403_ok.py"),
    "REMO411": ("remo411_bad.py", "remo411_ok.py"),
    "REMO412": ("remo412_bad.py", "remo412_ok.py"),
    "REMO413": ("remo413_bad.py", "remo413_ok.py"),
    "REMO414": ("remo414_bad.py", "remo414_ok.py"),
    "REMO415": ("remo415_bad.py", "remo415_ok.py"),
    "REMO421": ("remo421_bad.py", "remo421_ok.py"),
    "REMO431": ("remo431_bad.py", "remo431_ok.py"),
    "REMO432": ("remo432_bad.py", "remo432_ok.py"),
    "REMO433": ("remo433_bad.py", "remo433_ok.py"),
    "REMO434": ("remo434_bad.py", "remo434_ok.py"),
    "REMO435": ("remo435_bad.py", "remo435_ok.py"),
}

#: Fixtures whose bait contains more than one instance of the defect.
EXPECTED_BAD_COUNTS = {
    "REMO401": 2,
    "REMO402": 3,
    "REMO403": 3,
    "REMO411": 2,
    "REMO415": 2,
    "REMO431": 2,
    "REMO432": 2,
    "REMO433": 2,
    "REMO435": 2,
}


def run_rule(code: str, fixture: str):
    return lint_paths([FIXTURES / fixture], root=REPO_ROOT, codes=[code])


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_rule_fires_on_bait(code):
    bad, _ok = RULE_FIXTURES[code]
    result = run_rule(code, bad)
    assert result.findings, f"{code} stayed silent on {bad}"
    assert {d.code for d in result.findings} == {code}
    assert len(result.findings) == EXPECTED_BAD_COUNTS.get(code, 1)
    for diag in result.findings:
        assert diag.line > 0 and diag.col > 0
        assert diag.path.endswith(bad)


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_rule_quiet_on_clean_fixture(code):
    _bad, ok = RULE_FIXTURES[code]
    result = run_rule(code, ok)
    assert result.findings == [], [d.format() for d in result.findings]


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_clean_fixtures_pass_every_rule(code):
    """The ok fixtures are globally clean, not just clean for their own
    rule -- so the suite's bait/clean split stays honest."""
    _bad, ok = RULE_FIXTURES[code]
    result = lint_paths([FIXTURES / ok], root=REPO_ROOT)
    assert result.findings == [], [d.format() for d in result.findings]


def test_syntax_error_reported_as_remo400(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n", encoding="utf-8")
    result = lint_paths([broken], root=tmp_path)
    assert [d.code for d in result.findings] == [SYNTAX_ERROR_CODE]
    assert "does not parse" in result.findings[0].message


def test_registry_matches_fixture_map():
    registered = {cls.code for cls in all_rule_classes()}
    assert registered == set(RULE_FIXTURES)
    described = {info.code for info in describe_rules()}
    assert described == registered | {SYNTAX_ERROR_CODE}


def test_every_rule_has_metadata():
    for cls in all_rule_classes():
        info = cls.info()
        assert info.title and info.family and info.hint, info.code
