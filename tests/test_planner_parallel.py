"""Parallel candidate evaluation must be invisible in the output.

``RemoPlanner(parallelism=N)`` fans each iteration's ranked candidates
across a forked process pool and merges the results back in rank order,
so the acceptance loop sees exactly the sequence a serial run would.
These tests pin that guarantee: identical plans *and* identical search
stats, not merely equal objective values.
"""

from __future__ import annotations

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner

HEAVY = CostModel(per_message=10.0, per_value=1.0)


def _observable(cluster, nodes, attrs):
    pairs = pairs_for(nodes, attrs)
    return {p for p in pairs if cluster.node(p.node).observes(p.attribute)}


def _fingerprint(plan):
    return (
        frozenset(plan.partition.sets),
        plan.collected_pair_count(),
        plan.total_message_cost(),
        plan.tree_count(),
    )


class TestParallelIdentity:
    def test_plan_and_stats_identical_to_serial(self, medium_cluster):
        pairs = _observable(
            medium_cluster, range(40), ["attr%02d" % i for i in range(8)]
        )
        kwargs = dict(candidate_budget=6, max_iterations=12)
        serial_plan, serial_stats = RemoPlanner(HEAVY, **kwargs).plan_with_stats(
            pairs, medium_cluster
        )
        parallel_plan, parallel_stats = RemoPlanner(
            HEAVY, parallelism=3, **kwargs
        ).plan_with_stats(pairs, medium_cluster)
        assert _fingerprint(parallel_plan) == _fingerprint(serial_plan)
        assert parallel_stats.iterations == serial_stats.iterations
        assert parallel_stats.candidates_ranked == serial_stats.candidates_ranked
        assert parallel_stats.candidates_evaluated == serial_stats.candidates_evaluated
        assert parallel_stats.accepted_ops == serial_stats.accepted_ops

    def test_parallel_with_debug_checks(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b", "c"])
        planner = RemoPlanner(HEAVY, parallelism=2, max_iterations=4)
        plan = planner.plan(pairs, small_cluster, debug_checks=True)
        assert plan.coverage() > 0

    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError):
            RemoPlanner(HEAVY, parallelism=0)
