"""Framework behaviour of ``repro.staticcheck``: suppression (noqa +
baseline), output formats, the context cache, the CLI, and the
acceptance gate that the repo's own source lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.staticcheck import (
    AnalysisContext,
    Baseline,
    LintDiagnostic,
    lint_paths,
    noqa_codes,
    render,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

BAIT = "def converged(cost):\n    return cost == 0.5\n"


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# The acceptance gate: the repo lints clean with every rule enabled.
# ---------------------------------------------------------------------------
def test_repo_lints_clean_with_all_rules():
    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
    )
    assert result.findings == [], "\n".join(d.format() for d in result.findings)
    assert len(result.checked_files) > 50
    assert result.context is not None and result.context.obs is not None


def test_shipped_baseline_is_empty():
    baseline = Baseline.load(REPO_ROOT / "staticcheck-baseline.json")
    assert baseline.budgets == {}


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------
def test_noqa_comment_parsing():
    assert noqa_codes("x = 1") is None
    assert noqa_codes("x = 1  # noqa") == frozenset()
    assert noqa_codes("x = 1  # noqa: REMO401") == {"REMO401"}
    assert noqa_codes("x = 1  # NOQA: remo401, REMO421") == {"REMO401", "REMO421"}
    assert noqa_codes("x = 1  # noqa: REMO421 -- single writer") == {"REMO421"}


def test_noqa_suppresses_matching_code(tmp_path):
    bad = write(tmp_path, "bad.py", "def f(cost):\n    return cost == 0.5  # noqa: REMO401\n")
    result = lint_paths([bad], root=tmp_path)
    assert result.findings == []
    assert [d.code for d in result.suppressed_noqa] == ["REMO401"]


def test_bare_noqa_suppresses_everything(tmp_path):
    bad = write(tmp_path, "bad.py", "def f(cost):\n    return cost == 0.5  # noqa\n")
    assert lint_paths([bad], root=tmp_path).findings == []


def test_noqa_for_other_code_does_not_suppress(tmp_path):
    bad = write(tmp_path, "bad.py", "def f(cost):\n    return cost == 0.5  # noqa: REMO402\n")
    assert [d.code for d in lint_paths([bad], root=tmp_path).findings] == ["REMO401"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
def test_baseline_absorbs_exactly_its_budget(tmp_path):
    bad = write(tmp_path, "bad.py", BAIT)
    first = lint_paths([bad], root=tmp_path)
    baseline = Baseline.from_diagnostics(first.findings)

    # Same findings: fully absorbed.
    again = lint_paths([bad], root=tmp_path, baseline=baseline)
    assert again.findings == []
    assert [d.code for d in again.suppressed_baseline] == ["REMO401"]

    # A second instance of the same defect exceeds the budget.
    worse = write(
        tmp_path, "bad.py", BAIT + "def again(cost):\n    return cost == 0.5\n"
    )
    result = lint_paths([worse], root=tmp_path, baseline=baseline)
    assert len(result.findings) == 1 and len(result.suppressed_baseline) == 1


def test_baseline_fingerprints_survive_line_moves(tmp_path):
    bad = write(tmp_path, "bad.py", BAIT)
    baseline = Baseline.from_diagnostics(lint_paths([bad], root=tmp_path).findings)
    shifted = write(tmp_path, "bad.py", "# a comment pushing lines down\n\n" + BAIT)
    assert lint_paths([shifted], root=tmp_path, baseline=baseline).findings == []


def test_baseline_round_trips_through_json(tmp_path):
    diag = LintDiagnostic(path="a.py", line=3, col=1, code="REMO401", message="m")
    baseline = Baseline.from_diagnostics([diag, diag])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.budgets == {diag.fingerprint(): 2}
    assert json.loads(path.read_text())["version"] == 1


def test_baseline_rejects_unknown_version(tmp_path):
    path = write(tmp_path, "baseline.json", '{"version": 99, "findings": {}}')
    with pytest.raises(ValueError):
        Baseline.load(path)


# ---------------------------------------------------------------------------
# Output formats
# ---------------------------------------------------------------------------
def test_text_format(tmp_path):
    bad = write(tmp_path, "bad.py", BAIT)
    out = render(lint_paths([bad], root=tmp_path), "text")
    assert "bad.py:2:12: REMO401" in out
    assert out.endswith("staticcheck: FAIL (1 file(s) checked, 1 finding(s))")


def test_json_format_schema(tmp_path):
    bad = write(tmp_path, "bad.py", BAIT)
    payload = json.loads(render(lint_paths([bad], root=tmp_path), "json"))
    assert payload["version"] == 1 and payload["ok"] is False
    (finding,) = payload["findings"]
    assert set(finding) == {
        "path", "line", "col", "code", "message", "severity", "fingerprint",
    }
    assert finding["code"] == "REMO401" and finding["severity"] == "error"
    assert payload["counts"]["by_code"] == {"REMO401": 1}
    assert payload["counts"]["findings"] == 1


def test_github_format_annotations(tmp_path):
    bad = write(tmp_path, "bad.py", BAIT)
    out = render(lint_paths([bad], root=tmp_path), "github")
    line = out.splitlines()[0]
    assert line.startswith("::error ")
    assert "file=bad.py" in line and "line=2" in line and "title=REMO401" in line
    assert "::" in line.split("title=REMO401", 1)[1]


def test_unknown_format_rejected(tmp_path):
    with pytest.raises(ValueError):
        render(lint_paths([write(tmp_path, "x.py", "x = 1\n")], root=tmp_path), "sarif")


# ---------------------------------------------------------------------------
# Context cache
# ---------------------------------------------------------------------------
def test_context_cache_reused_when_hashes_match(tmp_path):
    src = write(tmp_path, "mod.py", "async def go():\n    return 1\n")
    cache = tmp_path / "ctx.json"
    first = AnalysisContext.load_or_build(cache, [src], tmp_path)
    assert cache.exists() and "go" in first.async_names
    stamp = cache.stat().st_mtime_ns
    second = AnalysisContext.load_or_build(cache, [src], tmp_path)
    assert cache.stat().st_mtime_ns == stamp  # reused, not rebuilt
    assert second.async_names == first.async_names


def test_context_cache_rebuilt_on_change(tmp_path):
    src = write(tmp_path, "mod.py", "async def go():\n    return 1\n")
    cache = tmp_path / "ctx.json"
    AnalysisContext.load_or_build(cache, [src], tmp_path)
    write(tmp_path, "mod.py", "async def stop():\n    return 2\n")
    rebuilt = AnalysisContext.load_or_build(cache, [src], tmp_path)
    assert "stop" in rebuilt.async_names and "go" not in rebuilt.async_names


def test_context_extracts_obs_manifest():
    ctx = AnalysisContext.build(
        [REPO_ROOT / "src" / "repro" / "obs" / "names.py"], REPO_ROOT
    )
    assert ctx.obs is not None
    assert "messages_sent" in ctx.obs.metrics
    assert "agent.wave" in ctx.obs.spans
    assert "collector" in ctx.obs.lanes
    assert "node-" in ctx.obs.lane_prefixes
    assert {"node_lane", "worker_lane"} <= set(ctx.obs.lane_helpers)


# ---------------------------------------------------------------------------
# CLI (repro lint)
# ---------------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write(tmp_path, "clean.py", "x = 1\n")
    write(tmp_path, "dirty.py", BAIT)
    assert cli_main(["lint", "clean.py"]) == 0
    assert cli_main(["lint", "dirty.py"]) == 1
    out = capsys.readouterr().out
    assert "REMO401" in out and "staticcheck: FAIL" in out
    assert cli_main(["lint", "no/such/path"]) == 2
    assert cli_main(["lint", "--rule", "REMO999", "clean.py"]) == 2


def test_cli_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write(tmp_path, "dirty.py", BAIT)
    assert cli_main(["lint", "--write-baseline", "dirty.py"]) == 0
    assert (tmp_path / "staticcheck-baseline.json").exists()
    capsys.readouterr()
    assert cli_main(["lint", "dirty.py"]) == 0  # grandfathered
    assert "1 baselined" in capsys.readouterr().out


def test_cli_github_format(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write(tmp_path, "dirty.py", BAIT)
    assert cli_main(["lint", "--format", "github", "dirty.py"]) == 1
    assert capsys.readouterr().out.startswith("::error ")


def test_cli_context_cache(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write(tmp_path, "clean.py", "x = 1\n")
    assert cli_main(["lint", "--context-cache", "ctx.json", "clean.py"]) == 0
    assert (tmp_path / "ctx.json").exists()
    assert cli_main(["lint", "--context-cache", "ctx.json", "clean.py"]) == 0
