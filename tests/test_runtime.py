"""Tests for the live asyncio runtime (`repro.runtime`)."""

import asyncio

import pytest

from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.runtime import (
    AgentOutage,
    COLLECTOR_ADDRESS,
    DropPolicy,
    Histogram,
    InProcessTransport,
    MonitoringRuntime,
    RuntimeConfig,
    RuntimeMetrics,
    TickEnvelope,
)

COST = CostModel(2.0, 1.0)

FAST = dict(period_seconds=0.02, seed=1)


def plan_for(cluster, pairs, partition=None):
    partition = partition or Partition.singletons({p.attribute for p in pairs})
    return ForestBuilder(COST).build(partition, pairs, cluster)


def overloaded_setup(root_budget_delta: float):
    """Plan against generous capacity, then run with the tree root's
    budget set to ``used + root_budget_delta`` (negative overloads it)."""
    plan_nodes = [
        SimNode(i, capacity=100.0, attributes=frozenset({"a"})) for i in range(8)
    ]
    plan_cluster = Cluster(plan_nodes, central_capacity=500.0)
    pairs = pairs_for(range(8), ["a"])
    plan = ForestBuilder(COST).build(Partition.one_set(["a"]), pairs, plan_cluster)
    tree = plan.trees[frozenset({"a"})].tree
    root = tree.root
    root_budget = max(tree.used(root) + root_budget_delta, 1e-6)
    run_nodes = [
        SimNode(
            i,
            capacity=root_budget if i == root else 100.0,
            attributes=frozenset({"a"}),
        )
        for i in range(8)
    ]
    return plan, Cluster(run_nodes, central_capacity=500.0)


class TestTransport:
    def test_send_recv_roundtrip(self):
        async def scenario():
            transport = InProcessTransport()
            transport.register(1)
            tick = TickEnvelope(period=0)
            assert await transport.send(1, tick)
            assert transport.pending(1) == 1
            received = await transport.recv(1, timeout=0.1)
            assert received is tick
            assert transport.pending(1) == 0

        asyncio.run(scenario())

    def test_send_to_unknown_address_is_refused(self):
        async def scenario():
            transport = InProcessTransport()
            assert not await transport.send(99, TickEnvelope(period=0))

        asyncio.run(scenario())

    def test_recv_timeout_returns_none(self):
        async def scenario():
            transport = InProcessTransport()
            transport.register(COLLECTOR_ADDRESS)
            assert await transport.recv(COLLECTOR_ADDRESS, timeout=0.01) is None

        asyncio.run(scenario())

    def test_transport_counts_envelopes(self):
        async def scenario():
            transport = InProcessTransport()
            transport.register(1)
            await transport.send(1, TickEnvelope(period=0))
            await transport.send(1, TickEnvelope(period=1))
            await transport.recv(1)
            assert transport.envelopes_sent == 2
            assert transport.envelopes_delivered == 1

        asyncio.run(scenario())


class TestMetrics:
    def test_histogram_quantiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(1.0) == pytest.approx(100.0)
        assert h.min == pytest.approx(1.0)

    def test_histogram_empty_and_bad_quantile(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.summary()["count"] == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_counters_and_dict_shape(self):
        m = RuntimeMetrics()
        m.incr("messages_sent")
        m.incr("messages_sent", 2)
        m.observe("latency", 0.5)
        snapshot = m.as_dict()
        assert snapshot["counters"]["messages_sent"] == 3.0
        assert snapshot["histograms"]["latency"]["count"] == 1.0
        assert "messages_sent" in m.render()


class TestConfig:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            RuntimeConfig(period_seconds=0.0)

    def test_rejects_bad_child_wait(self):
        with pytest.raises(ValueError):
            RuntimeConfig(child_wait_fraction=0.0)

    def test_rejects_bad_timeouts(self):
        with pytest.raises(ValueError):
            RuntimeConfig(heartbeat_every=0)
        with pytest.raises(ValueError):
            RuntimeConfig(failure_timeout=0)

    def test_outage_window_validates(self):
        with pytest.raises(ValueError):
            AgentOutage(node=1, start=5, end=5)
        with pytest.raises(ValueError):
            AgentOutage(node=1, start=-1, end=2)


class TestHappyPath:
    def test_feasible_plan_runs_clean(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        report = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST)
        ).run(8)
        assert report.final_coverage == pytest.approx(1.0)
        assert report.mean_fresh_coverage == pytest.approx(1.0)
        assert report.messages_dropped == 0
        assert report.mean_percentage_error == pytest.approx(0.0, abs=1e-9)
        assert len(report.samples) == 8

    def test_message_volume_matches_topology(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        members = sum(len(r.tree) for r in plan.trees.values())
        report = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST)
        ).run(5)
        assert report.messages_sent == 5 * members
        assert int(report.metrics.counter("heartbeats_sent")) == 5 * members

    def test_heartbeat_interval_respected(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        config = RuntimeConfig(heartbeat_every=2, **FAST)
        report = MonitoringRuntime(plan, small_cluster, config=config).run(4)
        members = sum(len(r.tree) for r in plan.trees.values())
        assert int(report.metrics.counter("heartbeats_sent")) == 2 * members

    def test_rejects_nonpositive_periods(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        runtime = MonitoringRuntime(plan, small_cluster, config=RuntimeConfig(**FAST))
        with pytest.raises(ValueError):
            runtime.run(0)

    def test_report_is_json_shaped(self, small_cluster):
        import json

        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        report = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST)
        ).run(3)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["coverage"]["final"] == pytest.approx(1.0)
        assert payload["messages"]["sent"] > 0
        assert len(payload["per_period"]) == 3


class TestDropPolicies:
    def test_trim_sheds_values_not_messages(self):
        plan, cluster = overloaded_setup(root_budget_delta=-2.0)
        config = RuntimeConfig(drop_policy=DropPolicy.TRIM, **FAST)
        report = MonitoringRuntime(plan, cluster, config=config).run(5)
        assert int(report.metrics.counter("values_trimmed")) > 0
        assert int(report.metrics.counter("messages_dropped_capacity")) == 0
        assert report.mean_fresh_coverage > 0.5

    def test_drop_is_all_or_nothing(self):
        plan, cluster = overloaded_setup(root_budget_delta=-2.0)
        config = RuntimeConfig(drop_policy=DropPolicy.DROP, **FAST)
        report = MonitoringRuntime(plan, cluster, config=config).run(5)
        assert int(report.metrics.counter("messages_dropped_capacity")) > 0
        assert int(report.metrics.counter("values_trimmed")) == 0

    def test_defer_carries_overflow_to_next_period(self):
        plan, cluster = overloaded_setup(root_budget_delta=-2.0)
        config = RuntimeConfig(drop_policy=DropPolicy.DEFER, **FAST)
        report = MonitoringRuntime(plan, cluster, config=config).run(6)
        assert int(report.metrics.counter("values_deferred")) > 0
        assert int(report.metrics.counter("values_trimmed")) == 0
        # Backpressure trades freshness, not coverage: deferred values
        # still arrive eventually.
        assert report.final_coverage == pytest.approx(1.0)
        assert report.metrics.histogram("staleness_periods").max >= 1.0

    def test_enforcement_off_ignores_budgets(self):
        plan, cluster = overloaded_setup(root_budget_delta=-1e9)
        config = RuntimeConfig(enforce_capacity=False, **FAST)
        report = MonitoringRuntime(plan, cluster, config=config).run(5)
        assert report.messages_dropped == 0
        assert report.mean_fresh_coverage == pytest.approx(1.0)


class TestFailureDetection:
    def _chain_plan(self, cluster):
        pairs = pairs_for(range(6), ["a"])
        return plan_for(cluster, pairs, Partition.one_set(["a"]))

    def test_dead_node_is_flagged_and_recovers(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        config = RuntimeConfig(
            failure_timeout=2,
            outages=[AgentOutage(node=3, start=2, end=5)],
            **FAST,
        )
        report = MonitoringRuntime(plan, small_cluster, config=config).run(9)
        kinds = [(e.node, e.kind) for e in report.failure_events]
        assert (3, "down") in kinds
        assert (3, "recovered") in kinds
        down = next(e for e in report.failure_events if e.kind == "down")
        recovered = next(e for e in report.failure_events if e.kind == "recovered")
        # Flagged after the timeout lapses, recovered after the outage.
        assert down.period >= 2
        assert recovered.period >= 5

    def test_interior_node_outage_loses_subtree(self):
        # A chain-ish single tree: killing an interior node silences
        # its whole subtree (messages dropped at the dead hop).
        nodes = [
            SimNode(node_id=i, capacity=40.0, attributes=frozenset({"a"}))
            for i in range(6)
        ]
        cluster = Cluster(nodes, central_capacity=60.0)
        plan = self._chain_plan(cluster)
        interior = None
        tree = plan.trees[frozenset({"a"})].tree
        for node in tree.nodes:
            if tree.parent(node) is not None and tree.children(node):
                interior = node
                break
        assert interior is not None, "workload should build a multi-level tree"
        config = RuntimeConfig(outages=[AgentOutage(node=interior, start=1, end=4)], **FAST)
        report = MonitoringRuntime(plan, cluster, config=config).run(6)
        lost = 1 + len(tree.subtree_nodes(interior)) - 1
        assert int(report.metrics.counter("messages_dropped_failure")) > 0
        # Freshness dips while the subtree is dark, then recovers.
        dark = [s.fresh_fraction for s in report.samples if 1 <= s.period < 4]
        bright = [s.fresh_fraction for s in report.samples if s.period >= 4]
        assert max(dark) < 1.0
        assert bright[-1] == pytest.approx(1.0)
        assert lost >= 2

    def test_down_agent_sends_nothing(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        config = RuntimeConfig(outages=[AgentOutage(node=0, start=0, end=100)], **FAST)
        report = MonitoringRuntime(plan, small_cluster, config=config).run(4)
        assert int(report.metrics.counter("agent_down_periods")) == 4
        assert report.mean_fresh_coverage < 1.0
