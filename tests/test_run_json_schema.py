"""Schema checks for ``repro run --json`` and the ``--metrics`` export.

Golden-*key* assertions, not golden values: runs are timing-sensitive,
so these tests pin the shape consumers (CI, dashboards) rely on, and
check that the Prometheus snapshot reconciles with the report -- both
are views of the same registry, so they can never legitimately drift.
"""

import json

import pytest

from repro.cli import main
from repro.obs.export import check_prometheus_text, parse_prometheus_text

RUN_ARGS = [
    "run",
    "--nodes",
    "24",
    "--tasks",
    "6",
    "--periods",
    "3",
    "--period-seconds",
    "0.03",
    "--json",
]


@pytest.fixture(scope="module")
def run_output(tmp_path_factory):
    """One shared live run with --json, --trace, and --metrics."""
    tmp = tmp_path_factory.mktemp("run_schema")
    trace_path = tmp / "run.trace.json"
    metrics_path = tmp / "run.prom"
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(
            RUN_ARGS + ["--trace", str(trace_path), "--metrics", str(metrics_path)]
        )
    assert code == 0
    return (
        json.loads(stdout.getvalue()),
        trace_path.read_text(),
        metrics_path.read_text(),
    )


class TestRunJsonSchema:
    def test_top_level_keys(self, run_output):
        payload, _trace, _prom = run_output
        assert {
            "command",
            "scheme",
            "workload",
            "plan",
            "drop_policy",
            "requested_pairs",
            "periods",
            "wall_seconds",
            "coverage",
            "mean_percentage_error",
            "messages",
            "values",
            "cost_units_spent",
            "failure_events",
            "per_period",
            "metrics",
        } <= set(payload)

    def test_nested_keys(self, run_output):
        payload, _trace, _prom = run_output
        assert set(payload["coverage"]) == {"mean", "final", "fresh_mean"}
        assert set(payload["messages"]) == {
            "sent",
            "delivered",
            "dropped_capacity",
            "dropped_failure",
            "heartbeats",
        }
        assert set(payload["values"]) == {"trimmed", "deferred"}
        assert set(payload["plan"]) >= {
            "coverage",
            "collected_pairs",
            "requested_pairs",
            "trees",
            "traffic_per_period",
        }
        for sample in payload["per_period"]:
            assert set(sample) == {"period", "coverage", "fresh", "mean_error"}

    def test_metrics_block_shape(self, run_output):
        payload, _trace, _prom = run_output
        metrics = payload["metrics"]
        assert set(metrics) == {"counters", "histograms"}
        # Counters in the report are label-collapsed base names.
        assert all("{" not in name for name in metrics["counters"])
        for summary in metrics["histograms"].values():
            assert set(summary) == {"count", "mean", "p50", "p95", "max"}

    def test_value_types(self, run_output):
        payload, _trace, _prom = run_output
        assert isinstance(payload["periods"], int)
        assert isinstance(payload["wall_seconds"], float)
        for value in payload["messages"].values():
            assert isinstance(value, int)


class TestPrometheusReconciliation:
    def test_snapshot_is_well_formed(self, run_output):
        _payload, _trace, prom = run_output
        assert check_prometheus_text(prom) == []

    def test_counters_reconcile_with_report(self, run_output):
        payload, _trace, prom = run_output
        samples = parse_prometheus_text(prom)

        def total(base):
            return sum(
                v
                for k, v in samples.items()
                if k == base or k.startswith(base + "{")
            )

        messages = payload["messages"]
        assert total("messages_sent") == messages["sent"]
        assert total("messages_delivered") == messages["delivered"]
        assert total("messages_dropped_capacity") == messages["dropped_capacity"]
        assert total("messages_dropped_failure") == messages["dropped_failure"]
        assert total("heartbeats_sent") == messages["heartbeats"]
        assert total("cost_units_spent") == pytest.approx(
            payload["cost_units_spent"]
        )


class TestTraceArtifact:
    def test_chrome_trace_loads_and_is_monotonic(self, run_output):
        _payload, trace_text, _prom = run_output
        trace_doc = json.loads(trace_text)
        events = trace_doc["traceEvents"]
        assert events
        last = {}
        for event in events:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, 0.0)
            last[key] = event["ts"]

    def test_trace_covers_runtime_actors(self, run_output):
        _payload, trace_text, _prom = run_output
        events = json.loads(trace_text)["traceEvents"]
        names = {e["name"] for e in events}
        assert {"runtime.period", "agent.wave", "collector.close_period"} <= names
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "engine" in lanes
        assert "collector" in lanes
        assert any(lane.startswith("node-") for lane in lanes)


class TestIsolationBetweenInvocations:
    def test_two_runs_do_not_bleed_counters(self, tmp_path):
        import contextlib
        import io

        outputs = []
        for idx in range(2):
            metrics_path = tmp_path / f"m{idx}.prom"
            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                assert main(RUN_ARGS + ["--metrics", str(metrics_path)]) == 0
            payload = json.loads(stdout.getvalue())
            samples = parse_prometheus_text(metrics_path.read_text())
            sent = sum(
                v for k, v in samples.items() if k.startswith("messages_sent")
            )
            outputs.append((payload["messages"]["sent"], sent))
        for reported, snapshot in outputs:
            assert snapshot == reported
