"""Unit tests for SINGLETON-SET / ONE-SET baselines and input handling."""

import pytest

from repro.core.attributes import NodeAttributePair, pairs_for
from repro.core.cost import CostModel
from repro.core.schemes import (
    OneSetPlanner,
    SingletonSetPlanner,
    as_pair_set,
    observable_pairs,
)
from repro.core.tasks import MonitoringTask, TaskManager

COST = CostModel(2.0, 1.0)


class TestInputNormalization:
    def test_accepts_task_list(self):
        tasks = [MonitoringTask("t", ["a"], [1, 2])]
        assert as_pair_set(tasks) == frozenset(pairs_for([1, 2], ["a"]))

    def test_accepts_task_manager(self):
        manager = TaskManager([MonitoringTask("t", ["a"], [1])])
        assert as_pair_set(manager) == frozenset({NodeAttributePair(1, "a")})

    def test_accepts_pairs(self):
        pairs = pairs_for([1], ["a"])
        assert as_pair_set(pairs) == frozenset(pairs)

    def test_empty_source(self):
        assert as_pair_set([]) == frozenset()

    def test_rejects_mixed_garbage(self):
        with pytest.raises(TypeError):
            as_pair_set([MonitoringTask("t", ["a"], [1]), "nonsense"])

    def test_observable_pairs_clips_unobservable(self, small_cluster):
        tasks = [MonitoringTask("t", ["a", "zzz"], [0, 1, 99])]
        pairs = observable_pairs(tasks, small_cluster)
        assert pairs == frozenset(pairs_for([0, 1], ["a"]))


class TestSingletonSet:
    def test_one_tree_per_attribute(self, small_cluster):
        tasks = [MonitoringTask("t", ["a", "b", "c"], range(6))]
        plan = SingletonSetPlanner(COST).plan(tasks, small_cluster)
        assert plan.tree_count() == 3
        assert all(len(s) == 1 for s in plan.partition.sets)

    def test_nodes_send_one_message_per_attribute(self, small_cluster):
        tasks = [MonitoringTask("t", ["a", "b"], range(6))]
        plan = SingletonSetPlanner(COST).plan(tasks, small_cluster)
        # Each node appears in both trees.
        for result in plan.trees.values():
            assert len(result.tree) == 6


class TestOneSet:
    def test_single_tree(self, small_cluster):
        tasks = [MonitoringTask("t", ["a", "b", "c"], range(6))]
        plan = OneSetPlanner(COST).plan(tasks, small_cluster)
        assert plan.tree_count() == 1

    def test_cheaper_than_singleton_when_capacity_allows(self, small_cluster):
        """One big message per node beats many small ones on overhead."""
        tasks = [MonitoringTask("t", ["a", "b", "c"], range(6))]
        sp = SingletonSetPlanner(COST).plan(tasks, small_cluster)
        op = OneSetPlanner(COST).plan(tasks, small_cluster)
        assert op.coverage() == pytest.approx(1.0)
        assert op.total_message_cost() < sp.total_message_cost()

    def test_saturates_under_heavy_load(self, tight_cluster):
        """The paper's OP scalability wall: the single tree cannot grow."""
        tasks = [MonitoringTask("t", ["a", "b", "c", "d"], range(20))]
        sp = SingletonSetPlanner(COST).plan(tasks, tight_cluster)
        op = OneSetPlanner(COST).plan(tasks, tight_cluster)
        assert op.coverage() < sp.coverage()


class TestErrors:
    def test_empty_workload_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            SingletonSetPlanner(COST).plan([], small_cluster)

    def test_unobservable_workload_rejected(self, small_cluster):
        tasks = [MonitoringTask("t", ["not-an-attr"], [0])]
        with pytest.raises(ValueError):
            OneSetPlanner(COST).plan(tasks, small_cluster)
