"""End-to-end integration tests spanning planner, simulator, streams,
adaptation and extensions -- the paper's full loop in miniature."""

import pytest

from repro.core.adaptation import AdaptationStrategy, AdaptiveMonitoringService
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.ext.reliability import (
    ReplicatedRegistry,
    alias_cluster,
    rewrite_ssdp,
)
from repro.cluster.metrics import MetricRegistry
from repro.simulation import (
    FailureInjector,
    LinkOutage,
    MonitoringSimulation,
    SimulationConfig,
)
from repro.streams import (
    StreamMetricRegistry,
    build_stream_cluster,
    make_yieldmonitor,
    yieldmonitor_tasks,
)
from repro.workloads.tasks import sample_small_tasks
from repro.workloads.updates import TaskUpdateStream

COST = CostModel(per_message=8.0, per_value=1.0)


@pytest.fixture(scope="module")
def ym_setup():
    app = make_yieldmonitor(n_nodes=40, n_lines=16, seed=21)
    cluster = build_stream_cluster(app, capacity=250.0)
    tasks = yieldmonitor_tasks(app, 25, seed=22)
    return app, cluster, tasks


class TestPlanSimulateLoop:
    def test_remo_error_not_worse_than_baselines(self, ym_setup):
        """The headline claim, in miniature: REMO's percentage error is
        at or below both baselines' on a stream workload."""
        app, cluster, tasks = ym_setup
        errors = {}
        for name, planner in [
            ("sp", SingletonSetPlanner(COST)),
            ("op", OneSetPlanner(COST)),
            ("remo", RemoPlanner(COST)),
        ]:
            plan = planner.plan(tasks, cluster)
            stats = MonitoringSimulation(
                plan,
                cluster,
                registry=StreamMetricRegistry(app),
                config=SimulationConfig(seed=5),
            ).run(15)
            errors[name] = stats.mean_percentage_error
        assert errors["remo"] <= errors["sp"] + 1e-9
        assert errors["remo"] <= errors["op"] + 1e-9

    def test_coverage_matches_simulated_freshness(self, ym_setup):
        """Analytic coverage and simulated freshness must agree for a
        drop-free run with shallow trees."""
        app, cluster, tasks = ym_setup
        plan = RemoPlanner(COST).plan(tasks, cluster)
        stats = MonitoringSimulation(
            plan,
            cluster,
            registry=StreamMetricRegistry(app),
            config=SimulationConfig(seed=5, hop_latency=0.001),
        ).run(10)
        assert stats.mean_fresh_coverage == pytest.approx(plan.coverage(), abs=0.02)


class TestAdaptationLoop:
    def test_service_survives_update_storm(self, medium_cluster):
        tasks = sample_small_tasks(medium_cluster, 15, seed=31)
        stream = TaskUpdateStream(medium_cluster, tasks, seed=32)
        svc = AdaptiveMonitoringService(
            medium_cluster, COST, strategy=AdaptationStrategy.ADAPTIVE
        )
        svc.initialize(tasks, now=0.0)
        caps = {n.node_id: n.capacity for n in medium_cluster}
        for step in range(6):
            report = svc.apply_changes(stream.next_batch(), now=float(step + 1))
            assert report.requested_pairs > 0
            svc.plan.validate(caps, medium_cluster.central_capacity)

    def test_adaptive_cheaper_than_rebuild_over_time(self, medium_cluster):
        tasks = sample_small_tasks(medium_cluster, 15, seed=31)
        totals = {}
        for strategy in (AdaptationStrategy.REBUILD, AdaptationStrategy.ADAPTIVE):
            stream = TaskUpdateStream(medium_cluster, tasks, seed=32)
            svc = AdaptiveMonitoringService(medium_cluster, COST, strategy=strategy)
            svc.initialize(tasks, now=0.0)
            cost = 0
            for step in range(5):
                report = svc.apply_changes(stream.next_batch(), now=float(step + 1))
                cost += report.adaptation_messages
            totals[strategy] = cost
        assert totals[AdaptationStrategy.ADAPTIVE] <= totals[AdaptationStrategy.REBUILD]


class TestReplicationUnderFailures:
    def test_ssdp_survives_single_path_outage(self, small_cluster):
        from repro.core.tasks import MonitoringTask

        tasks = [MonitoringTask("critical", ["a"], range(6))]
        rewrite = rewrite_ssdp(tasks, factor=2)
        cluster = alias_cluster(small_cluster, rewrite)
        planner = RemoPlanner(COST, forbidden_pairs=rewrite.forbidden_pairs)
        plan = planner.plan(rewrite.tasks, cluster)

        # Sever every edge of the base tree; replica tree still delivers.
        base_set = next(s for s in plan.partition.sets if "a" in s)
        base_tree = plan.trees[base_set].tree
        outages = [
            LinkOutage(node, base_set, 0.0, 1e9)
            for node in base_tree.nodes
        ]
        base_registry = MetricRegistry(
            [p for p in plan.pairs if p.attribute == "a"], seed=1
        )
        registry = ReplicatedRegistry(base_registry, rewrite.alias_to_base)
        stats = MonitoringSimulation(
            plan,
            cluster,
            registry=registry,
            config=SimulationConfig(seed=2),
            failures=FailureInjector(link_outages=outages),
        ).run(10)
        assert stats.messages_dropped_failure > 0
        # The replica pairs (aliases) are still fresh; only base pairs
        # stalled, so freshness stays at ~half rather than zero.
        assert stats.mean_fresh_coverage >= 0.45
