"""Unit tests for the planner's initialization seed ladder."""


from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner, _separate_forbidden

HEAVY = CostModel(10.0, 1.0)


def seeds_for(planner, pairs):
    attrs = frozenset(p.attribute for p in pairs)
    return planner._seed_partitions(frozenset(pairs), attrs)


class TestSeedLadder:
    def test_includes_one_set(self):
        planner = RemoPlanner(HEAVY)
        pairs = pairs_for(range(8), ["a", "b", "c", "d"])
        seeds = seeds_for(planner, pairs)
        assert any(len(s) == 1 for s in seeds)

    def test_kway_ladder_sizes(self):
        planner = RemoPlanner(HEAVY)
        pairs = pairs_for(range(8), [f"m{i}" for i in range(9)])
        seeds = seeds_for(planner, pairs)
        sizes = sorted(len(s) for s in seeds)
        # one-set plus k = 2, 4, 8 groupings.
        assert sizes[0] == 1
        assert 2 in sizes and 4 in sizes and 8 in sizes

    def test_seeds_cover_universe(self):
        planner = RemoPlanner(HEAVY)
        pairs = pairs_for(range(8), ["a", "b", "c", "d", "e"])
        universe = {p.attribute for p in pairs}
        for seed in seeds_for(planner, pairs):
            assert set(seed.universe) == universe

    def test_balance_cap_prevents_degeneration(self):
        """Broadly observed attributes must not all land in one group."""
        planner = RemoPlanner(HEAVY)
        # Every attribute observed at every node: identical masks.
        pairs = pairs_for(range(10), [f"m{i}" for i in range(8)])
        seeds = seeds_for(planner, pairs)
        two_way = next(s for s in seeds if len(s) == 2)
        sizes = sorted(len(group) for group in two_way.sets)
        assert sizes[0] >= 2  # not 1-vs-7

    def test_single_attribute_has_no_seeds(self):
        planner = RemoPlanner(HEAVY)
        pairs = pairs_for(range(4), ["only"])
        assert seeds_for(planner, pairs) == []

    def test_forbidden_pairs_respected_in_seeds(self):
        planner = RemoPlanner(
            HEAVY, forbidden_pairs={frozenset({"a", "a#r1"})}
        )
        pairs = pairs_for(range(6), ["a", "a#r1", "b"])
        for seed in seeds_for(planner, pairs):
            for group in seed.sets:
                assert not {"a", "a#r1"} <= set(group)


class TestSeparateForbidden:
    def test_splits_violating_group(self):
        out = _separate_forbidden([{"a", "b", "c"}], {frozenset({"a", "b"})})
        assert all(not {"a", "b"} <= g for g in out)
        assert set().union(*out) == {"a", "b", "c"}

    def test_clean_groups_untouched(self):
        out = _separate_forbidden([{"a", "b"}], {frozenset({"x", "y"})})
        assert out == [{"a", "b"}]

    def test_chained_conflicts(self):
        forbidden = {frozenset({"a", "b"}), frozenset({"b", "c"})}
        out = _separate_forbidden([{"a", "b", "c"}], forbidden)
        for g in out:
            for pair in forbidden:
                assert not pair <= g
