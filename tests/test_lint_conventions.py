"""The convention linter, now a deprecated shim over repro.staticcheck.

Each legacy rule still fires on bait and stays quiet on src/; the C00x
codes are mapped back from the framework's REMO40x rules.  The linter
lives in ``tools/`` (not the package), so load it by path.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "lint_conventions", REPO_ROOT / "tools" / "lint_conventions.py"
)
lint_conventions = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("lint_conventions", lint_conventions)
_SPEC.loader.exec_module(lint_conventions)


def _codes(source: str, tmp_path, name: str = "bait.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return [code for (_p, _l, _c, code, _m) in lint_conventions.lint_file(path)]


def test_float_literal_equality_is_flagged(tmp_path):
    assert _codes("ok = x == 0.5\n", tmp_path) == ["C001"]
    assert _codes("ok = 0.0 != y\n", tmp_path) == ["C001"]
    assert _codes("ok = x == -1.5\n", tmp_path) == ["C001"]


def test_integer_comparisons_and_isclose_are_fine(tmp_path):
    assert _codes("ok = x == 0\n", tmp_path) == []
    assert _codes("import math\nok = math.isclose(x, 0.5)\n", tmp_path) == []
    assert _codes("ok = x < 0.5 or x >= 1.5\n", tmp_path) == []


def test_mutable_default_arguments_are_flagged(tmp_path):
    src = "def f(a, xs=[], m={}, s=set(), ok=None, t=()):\n    return a\n"
    assert _codes(src, tmp_path) == ["C002", "C002", "C002"]


def test_cost_attribute_arithmetic_is_flagged(tmp_path):
    src = "def f(model, x):\n    return model.per_message + model.per_value * x\n"
    codes = _codes(src, tmp_path)
    assert "C003" in codes


def test_cost_attribute_reads_without_arithmetic_are_fine(tmp_path):
    src = "def f(model):\n    return (model.per_message, model.per_value)\n"
    assert _codes(src, tmp_path) == []


def test_cost_module_itself_is_exempt_from_c003(tmp_path):
    src = "def f(self, x):\n    return self.per_message + self.per_value * x\n"
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True)
    path = target / "cost.py"
    path.write_text(src, encoding="utf-8")
    codes = [c for (_p, _l, _c, c, _m) in lint_conventions.lint_file(path)]
    assert codes == []


def test_syntax_errors_are_reported_not_raised(tmp_path):
    assert _codes("def broken(:\n", tmp_path) == ["C000"]


def test_repo_source_tree_is_clean():
    findings = []
    for path in lint_conventions.iter_python_files([str(REPO_ROOT / "src")]):
        findings.extend(lint_conventions.lint_file(path))
    assert findings == [], findings


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert lint_conventions.main([str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("bad = x == 0.5\n", encoding="utf-8")
    assert lint_conventions.main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "C001" in out and "FAIL" in out


def test_cli_missing_target_exits_2(capsys):
    assert lint_conventions.main(["definitely/not/a/path"]) == 2
    assert "ERROR" in capsys.readouterr().out


def test_main_announces_deprecation(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    lint_conventions.main([str(clean)])
    err = capsys.readouterr().err
    assert "deprecated" in err and "repro lint" in err


def test_shim_delegates_to_staticcheck_codes(tmp_path):
    """Every legacy code maps to the framework rule that produced it."""
    from repro.staticcheck import lint_paths

    bait = tmp_path / "bait.py"
    bait.write_text(
        "def f(xs=[]):\n"
        "    return xs == 0.5\n"
        "def g(model, x):\n"
        "    return model.per_message + model.per_value * x\n",
        encoding="utf-8",
    )
    legacy = sorted(code for (_p, _l, _c, code, _m) in lint_conventions.lint_file(bait))
    framework = sorted(
        d.code
        for d in lint_paths(
            [bait], root=tmp_path, codes=["REMO401", "REMO402", "REMO403"]
        ).findings
    )
    assert legacy == ["C001", "C002", "C003"]
    assert framework == ["REMO401", "REMO402", "REMO403"]
    mapped = [lint_conventions.LEGACY_CODES[code] for code in framework]
    assert mapped == legacy
