"""Tests for DIRECT-APPLY's in-place topology patching semantics."""


from repro.core.adaptation import AdaptationStrategy, AdaptiveMonitoringService
from repro.core.attributes import NodeAttributePair
from repro.core.cost import CostModel
from repro.core.tasks import MonitoringTask

COST = CostModel(per_message=4.0, per_value=1.0)


def service(cluster):
    return AdaptiveMonitoringService(
        cluster, COST, strategy=AdaptationStrategy.DIRECT_APPLY
    )


class TestMinimalChange:
    def test_pair_addition_changes_few_edges(self, small_cluster):
        svc = service(small_cluster)
        svc.initialize([MonitoringTask("t", ["a"], range(6))], now=0.0)
        report = svc.apply_changes(
            [("add", MonitoringTask("extra", ["a", "b"], [0]))], now=1.0
        )
        # Grafting pair (0, b) creates at most a handful of edges; a
        # rebuild would have rewired everything.
        assert report.adaptation_messages <= 4

    def test_pair_removal_changes_few_edges(self, small_cluster):
        svc = service(small_cluster)
        svc.initialize(
            [
                MonitoringTask("t", ["a"], range(6)),
                MonitoringTask("x", ["a", "b"], [0, 1]),
            ],
            now=0.0,
        )
        report = svc.apply_changes([("remove", MonitoringTask("x", ["a", "b"], [0, 1]))], now=1.0)
        assert report.adaptation_messages <= 6
        assert NodeAttributePair(0, "b") not in svc.plan.pairs

    def test_removed_pairs_leave_trees(self, small_cluster):
        svc = service(small_cluster)
        svc.initialize(
            [
                MonitoringTask("keep", ["a"], range(6)),
                MonitoringTask("drop", ["b"], range(6)),
            ],
            now=0.0,
        )
        svc.apply_changes([("remove", MonitoringTask("drop", ["b"], range(6)))], now=1.0)
        collected = svc.plan.collected_pairs()
        assert all(p.attribute != "b" for p in collected)
        svc.plan.validate(
            {n.node_id: n.capacity for n in small_cluster},
            small_cluster.central_capacity,
        )

    def test_added_attribute_gets_singleton_tree(self, small_cluster):
        svc = service(small_cluster)
        svc.initialize([MonitoringTask("t", ["a"], range(6))], now=0.0)
        svc.apply_changes([("add", MonitoringTask("n", ["c"], range(6)))], now=1.0)
        assert frozenset({"c"}) in set(svc.plan.partition.sets)

    def test_patched_plan_never_violates_capacity(self, tight_cluster):
        svc = service(tight_cluster)
        svc.initialize(
            [MonitoringTask("t", ["a", "b"], range(20))], now=0.0
        )
        caps = {n.node_id: n.capacity for n in tight_cluster}
        for step, task in enumerate(
            [
                MonitoringTask("u1", ["c"], range(10)),
                MonitoringTask("u2", ["d"], range(5, 15)),
                MonitoringTask("t", ["a"], range(20)),  # modify: drop b
            ]
        ):
            op = "modify" if task.task_id == "t" else "add"
            svc.apply_changes([(op, task)], now=float(step + 1))
            svc.plan.validate(caps, tight_cluster.central_capacity)

    def test_collected_never_exceeds_requested(self, small_cluster):
        svc = service(small_cluster)
        svc.initialize(
            [MonitoringTask("t", ["a", "b"], range(6))], now=0.0
        )
        svc.apply_changes(
            [("modify", MonitoringTask("t", ["a", "c"], range(3)))], now=1.0
        )
        assert svc.plan.collected_pairs() <= set(svc.plan.pairs)

    def test_unobservable_additions_ignored(self, small_cluster):
        svc = service(small_cluster)
        svc.initialize([MonitoringTask("t", ["a"], range(6))], now=0.0)
        # Attribute zzz is not observable anywhere: pairs must be clipped.
        svc.apply_changes([("add", MonitoringTask("bogus", ["zzz"], [0]))], now=1.0)
        assert all(p.attribute != "zzz" for p in svc.plan.pairs)

    def test_report_snapshot_not_aliased(self, small_cluster):
        """The edge diff must reflect actual changes even though D-A
        mutates the previous plan's tree objects in place."""
        svc = service(small_cluster)
        svc.initialize([MonitoringTask("t", ["a"], range(6))], now=0.0)
        report = svc.apply_changes(
            [("modify", MonitoringTask("t", ["a"], range(3)))], now=1.0
        )
        # Three nodes left the tree: at least those edges changed.
        assert report.adaptation_messages >= 3
