"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.nodes == 64
        assert args.scheme == "remo"

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--scheme", "bogus"])

    def test_adapt_strategy_choices(self):
        args = build_parser().parse_args(["adapt", "--strategy", "rebuild"])
        assert args.strategy == "rebuild"


class TestCommands:
    def test_plan_runs_and_prints_summary(self, capsys):
        rc = main(
            ["plan", "--nodes", "16", "--tasks", "4", "--scheme", "singleton", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "coverage" in out
        assert "trees" in out

    def test_plan_remo_small(self, capsys):
        rc = main(["plan", "--nodes", "12", "--tasks", "3", "--pool", "8", "--seed", "5"])
        assert rc == 0
        assert "remo plan" in capsys.readouterr().out

    def test_simulate_reports_error_metric(self, capsys):
        rc = main(
            [
                "simulate",
                "--nodes", "12", "--tasks", "3", "--pool", "8",
                "--scheme", "singleton", "--periods", "5", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean % error" in out
        assert "messages sent" in out

    def test_adapt_runs_batches(self, capsys):
        rc = main(
            [
                "adapt",
                "--nodes", "12", "--tasks", "4", "--pool", "8",
                "--batches", "2", "--strategy", "direct_apply", "--seed", "4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "direct_apply over 2 update batches" in out
