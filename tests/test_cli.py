"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.nodes == 64
        assert args.scheme == "remo"

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--scheme", "bogus"])

    def test_adapt_strategy_choices(self):
        args = build_parser().parse_args(["adapt", "--strategy", "rebuild"])
        assert args.strategy == "rebuild"

    def test_check_accepts_preset_and_corrupt(self):
        args = build_parser().parse_args(
            ["check", "--preset", "quickstart", "--corrupt", "cycle"]
        )
        assert args.preset == "quickstart"
        assert args.corrupt == "cycle"

    def test_check_rejects_unknown_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--corrupt", "bit-rot"])


class TestCommands:
    def test_plan_runs_and_prints_summary(self, capsys):
        rc = main(
            ["plan", "--nodes", "16", "--tasks", "4", "--scheme", "singleton", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "coverage" in out
        assert "trees" in out

    def test_plan_remo_small(self, capsys):
        rc = main(["plan", "--nodes", "12", "--tasks", "3", "--pool", "8", "--seed", "5"])
        assert rc == 0
        assert "remo plan" in capsys.readouterr().out

    def test_simulate_reports_error_metric(self, capsys):
        rc = main(
            [
                "simulate",
                "--nodes", "12", "--tasks", "3", "--pool", "8",
                "--scheme", "singleton", "--periods", "5", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean % error" in out
        assert "messages sent" in out

    def test_adapt_runs_batches(self, capsys):
        rc = main(
            [
                "adapt",
                "--nodes", "12", "--tasks", "4", "--pool", "8",
                "--batches", "2", "--strategy", "direct_apply", "--seed", "4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "direct_apply over 2 update batches" in out

    def test_check_clean_plan_exits_zero(self, capsys):
        rc = main(["check", "--nodes", "12", "--tasks", "3", "--pool", "8", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no diagnostics" in out

    def test_check_corrupted_plan_exits_nonzero(self, capsys):
        rc = main(
            [
                "check",
                "--nodes", "12", "--tasks", "3", "--pool", "8",
                "--seed", "5", "--corrupt", "stale-cost", "--hints",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "REMO203" in out
        assert "hint:" in out

    def test_check_each_fault_kind_fails_with_its_code(self, capsys):
        expected = {
            "drop-tree": "REMO102",
            "cycle": "REMO111",
            "overload": "REMO201",
            "stale-cost": "REMO203",
        }
        for kind, code in expected.items():
            rc = main(
                [
                    "check",
                    "--nodes", "12", "--tasks", "3", "--pool", "8",
                    "--seed", "5", "--corrupt", kind,
                ]
            )
            out = capsys.readouterr().out
            assert rc == 1, kind
            assert code in out, (kind, out)

    def test_check_codes_lists_registry(self, capsys):
        rc = main(["check", "--codes"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "REMO101" in out
        assert "REMO303" in out


class TestJsonOutput:
    """`--json` must emit exactly one parseable object per invocation."""

    ARGS = ["--nodes", "12", "--tasks", "3", "--pool", "8", "--seed", "5"]

    def test_plan_json(self, capsys):
        rc = main(["plan", *self.ARGS, "--scheme", "singleton", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "plan"
        assert payload["scheme"] == "singleton"
        assert 0.0 < payload["summary"]["coverage"] <= 1.0
        assert payload["summary"]["trees"] == len(payload["trees"])
        assert all("attributes" in row for row in payload["trees"])

    def test_plan_json_matches_table_numbers(self, capsys):
        rc = main(["plan", *self.ARGS, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        rc = main(["plan", *self.ARGS])
        assert rc == 0
        table = capsys.readouterr().out
        assert str(payload["summary"]["collected_pairs"]) in table
        assert str(payload["summary"]["trees"]) in table

    def test_simulate_json(self, capsys):
        rc = main(["simulate", *self.ARGS, "--periods", "5", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"
        assert payload["periods"] == 5
        assert payload["messages"]["sent"] > 0
        assert payload["messages"]["delivered"] <= payload["messages"]["sent"]
        assert 0.0 <= payload["mean_percentage_error"] <= 1.0

    def test_adapt_json(self, capsys):
        rc = main(
            ["adapt", *self.ARGS, "--batches", "2", "--strategy", "direct_apply", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "adapt"
        assert payload["strategy"] == "direct_apply"
        assert [b["batch"] for b in payload["batches"]] == [1, 2]
        assert all("coverage" in b for b in payload["batches"])
