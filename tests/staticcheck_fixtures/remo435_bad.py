"""Bait: structured-log event names not in the manifest (REMO435)."""

from repro.obs import log, names


def announce(port):
    log.emit("server_started", port=port)
    log.emit(names.SPAN_AGENT_WAVE)  # a span name is not a log event
