"""Clean: integer comparisons and isclose are fine."""

import math


def empty(count):
    return count == 0


def converged(cost):
    return math.isclose(cost, 0.5) or cost < 0.25
