"""Bait: coroutine called but never awaited (REMO412)."""


async def send_batch():
    return None


async def runner():
    send_batch()
