"""Bait: mutable default arguments (REMO402)."""


def collect(readings=[]):
    return readings


def index(table={}, seen=set()):
    return table, seen
