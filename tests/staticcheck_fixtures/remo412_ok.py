"""Clean: the coroutine is awaited."""


async def send_batch():
    return None


async def runner():
    await send_batch()
