"""Clean: None defaults, containers built inside the body."""


def collect(readings=None):
    return list(readings or [])


def index(table=None, label=""):
    return table if table is not None else {}, label
