"""Bait: lanes not declared in the manifest (REMO433)."""

from repro.obs import names, trace


def work(node):
    with trace.span(names.SPAN_AGENT_WAVE, lane="mystery-lane"):
        pass
    with trace.span(names.SPAN_AGENT_WAVE, lane=f"rogue-{node}"):
        pass
