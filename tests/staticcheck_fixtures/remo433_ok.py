"""Clean: declared lanes, prefixes, and lane helpers."""

from repro.obs import names, trace


def work(node):
    with trace.span(names.SPAN_AGENT_WAVE, lane=names.LANE_ENGINE):
        pass
    with trace.span(names.SPAN_AGENT_WAVE, lane=f"node-{node}"):
        pass
    with trace.span(names.SPAN_AGENT_WAVE, lane=names.node_lane(node)):
        pass
