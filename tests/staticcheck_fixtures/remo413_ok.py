"""Clean: the handle is retained (and awaited)."""

import asyncio


async def work():
    return None


async def runner():
    task = asyncio.create_task(work())
    await task
