"""Bait: transport recv awaited with no timeout (REMO414)."""


async def pump(transport):
    envelope = await transport.recv(0)
    return envelope
