"""Clean: cost math through CostModel methods; bare reads fine."""


def overhead(model, msgs):
    return model.overhead_cost(msgs)


def parameters(model):
    return (model.per_message, model.per_value)
