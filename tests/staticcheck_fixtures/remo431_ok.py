"""Clean: declared metric names, by literal or constant."""

from repro.obs import names


def record(metrics, name, value):
    metrics.incr("messages_sent")
    metrics.observe(names.COLLECTION_LATENCY_S, value)
    metrics.incr(name, value)  # dynamic: not statically checkable
