"""Bait: stream handles acquired and never closed (REMO415)."""

import asyncio


async def leaky_client(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"ping")
    await writer.drain()
    return await reader.read(4)


async def leaky_server(handler, host, port):
    server = await asyncio.start_server(handler, host, port)
    await asyncio.sleep(1.0)
    return server.sockets[0].getsockname()
