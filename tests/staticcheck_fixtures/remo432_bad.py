"""Bait: span names not in the manifest (REMO432)."""

from repro.obs import trace


def work():
    with trace.span("not.a.span"):
        pass
    trace.event("also.not.a.span")
