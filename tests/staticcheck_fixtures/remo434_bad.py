"""Bait: span handle used outside a with statement (REMO434)."""

from repro.obs import names, trace


def work():
    handle = trace.span(names.SPAN_AGENT_WAVE)
    return handle
