"""Clean: declared span and event names."""

from repro.obs import names, trace


def work():
    with trace.span(names.SPAN_AGENT_WAVE):
        pass
    trace.event(names.EVENT_PLANNER_ACCEPT)
