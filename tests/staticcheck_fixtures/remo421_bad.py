"""Bait: self attr read, awaited, then written (REMO421)."""

import asyncio


class Agent:
    def __init__(self):
        self.pending = set()

    async def retire(self):
        snapshot = [task for task in self.pending]
        await asyncio.gather(*snapshot)
        self.pending.clear()
