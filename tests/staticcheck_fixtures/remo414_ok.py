"""Clean: recv guarded by a timeout (kwarg or positional)."""


async def pump(transport):
    envelope = await transport.recv(0, timeout=1.0)
    return envelope
