"""Clean: every stream handle is closed, scoped, or handed off."""

import asyncio


async def closing_client(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"ping")
        await writer.drain()
        return await reader.read(4)
    finally:
        writer.close()


async def scoped_server(handler, host, port):
    server = await asyncio.start_server(handler, host, port)
    async with server:
        await server.serve_forever()


class Pool:
    def __init__(self):
        self.writer = None

    async def dial(self, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        del reader
        self.writer = writer


async def delegating(registry, handler, host, port):
    server = await asyncio.start_server(handler, host, port)
    registry.adopt(server)
