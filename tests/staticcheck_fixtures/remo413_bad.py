"""Bait: task handle dropped on the floor (REMO413)."""

import asyncio


async def work():
    return None


async def runner():
    asyncio.create_task(work())
