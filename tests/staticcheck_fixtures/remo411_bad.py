"""Bait: blocking calls inside async def (REMO411)."""

import time
from time import sleep


async def tick():
    time.sleep(0.1)


async def tock():
    sleep(0.1)
