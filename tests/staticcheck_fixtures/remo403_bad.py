"""Bait: hand-rolled cost arithmetic (REMO403)."""


def overhead(model, msgs):
    return model.per_message * msgs


def accumulate(model, total, values):
    total += model.per_value * values
    return total


def negate(model):
    return -model.per_message
