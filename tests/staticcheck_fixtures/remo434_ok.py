"""Clean: spans as with-contexts; events are fire-and-forget."""

from repro.obs import names, trace


def work():
    with trace.timer(names.SPAN_AGENT_WAVE) as t:
        trace.event(names.EVENT_PLANNER_ACCEPT)
    return t
