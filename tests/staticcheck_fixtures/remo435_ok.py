"""Clean: declared log event names, by literal or constant."""

from repro.obs import log, names


def announce(event, port):
    log.emit(names.LOG_SERVE_READY, lane=names.LANE_SERVE, port=port)
    log.emit("serve.stopped")
    log.emit(event, port=port)  # dynamic: not statically checkable
