"""Bait: exact equality against float literals (REMO401)."""


def converged(cost):
    return cost == 0.5


def not_started(cost):
    return 0.0 != cost
