"""Clean: write precedes the await (or runs under a lock)."""

import asyncio


class Agent:
    def __init__(self):
        self.pending = set()
        self.lock = asyncio.Lock()

    async def retire(self):
        snapshot = list(self.pending)
        self.pending.clear()
        await asyncio.gather(*snapshot)

    async def locked_retire(self):
        async with self.lock:
            snapshot = list(self.pending)
            await asyncio.gather(*snapshot)
            self.pending.clear()
