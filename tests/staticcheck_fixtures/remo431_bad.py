"""Bait: metric names not in the manifest (REMO431)."""

from repro.obs import names


def record(metrics):
    metrics.incr("definitely_not_declared")
    metrics.observe(names.SPAN_AGENT_WAVE, 1.0)  # a span name is not a metric
