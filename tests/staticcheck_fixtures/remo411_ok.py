"""Clean: asyncio equivalents; blocking calls in sync code."""

import asyncio
import time


async def tick():
    await asyncio.sleep(0.1)


def calibrate():
    time.sleep(0.1)
