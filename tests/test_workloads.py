"""Unit tests for synthetic task samplers and update streams."""

import pytest

from repro.core.tasks import TaskManager
from repro.workloads.tasks import TaskSampler, sample_large_tasks, sample_small_tasks
from repro.workloads.updates import TaskUpdateStream


class TestTaskSampler:
    def test_sample_dimensions(self, medium_cluster):
        sampler = TaskSampler(medium_cluster, seed=1)
        task = sampler.sample("t", n_attributes=3, n_nodes=10)
        assert task is not None
        assert len(task.attributes) == 3
        assert 1 <= len(task.nodes) <= 10

    def test_sample_clips_unobserving_nodes(self, medium_cluster):
        sampler = TaskSampler(medium_cluster, seed=1)
        task = sampler.sample("t", 2, 20)
        for node in task.nodes:
            assert any(
                medium_cluster.node(node).observes(a) for a in task.attributes
            )

    def test_sample_many_count_and_ids(self, medium_cluster):
        sampler = TaskSampler(medium_cluster, seed=1)
        tasks = sampler.sample_many(12, (1, 3), (5, 15))
        assert len(tasks) == 12
        assert len({t.task_id for t in tasks}) == 12

    def test_sample_many_rejects_bad_ranges(self, medium_cluster):
        sampler = TaskSampler(medium_cluster, seed=1)
        with pytest.raises(ValueError):
            sampler.sample_many(3, (0, 2), (1, 5))
        with pytest.raises(ValueError):
            sampler.sample_many(0, (1, 2), (1, 5))

    def test_deterministic_by_seed(self, medium_cluster):
        t1 = TaskSampler(medium_cluster, seed=42).sample_many(5, (1, 3), (5, 10))
        t2 = TaskSampler(medium_cluster, seed=42).sample_many(5, (1, 3), (5, 10))
        for a, b in zip(t1, t2):
            assert a.attributes == b.attributes
            assert a.nodes == b.nodes

    def test_small_and_large_profiles(self, medium_cluster):
        small = sample_small_tasks(medium_cluster, 10, seed=1)
        large = sample_large_tasks(medium_cluster, 10, seed=1)
        mean_small = sum(len(t.nodes) for t in small) / len(small)
        mean_large = sum(len(t.nodes) for t in large) / len(large)
        assert mean_large > mean_small


class TestUpdateStream:
    def test_batches_modify_existing_tasks(self, medium_cluster):
        tasks = sample_small_tasks(medium_cluster, 20, seed=2)
        stream = TaskUpdateStream(medium_cluster, tasks, seed=3)
        batch = stream.next_batch()
        known = {t.task_id for t in tasks}
        for op, task in batch:
            assert op == "modify"
            assert task.task_id in known

    def test_batches_apply_cleanly_to_manager(self, medium_cluster):
        tasks = sample_small_tasks(medium_cluster, 20, seed=2)
        manager = TaskManager(tasks)
        stream = TaskUpdateStream(medium_cluster, tasks, seed=3)
        for _ in range(5):
            delta = manager.apply(stream.next_batch())
            # Replacing attributes must change the pair set eventually.
        assert len(manager) == 20

    def test_attr_replacement_fraction(self, medium_cluster):
        tasks = sample_small_tasks(
            medium_cluster, 10, seed=2, attr_range=(4, 4)
        )
        stream = TaskUpdateStream(
            medium_cluster, tasks, node_fraction=1.0, attr_fraction=0.5, seed=3
        )
        batch = dict((t.task_id, t) for _op, t in stream.next_batch())
        originals = {t.task_id: t for t in tasks}
        for tid, new in batch.items():
            old = originals[tid]
            kept = len(old.attributes & new.attributes)
            assert kept <= len(old.attributes) - 1  # something replaced

    def test_rejects_bad_fractions(self, medium_cluster):
        tasks = sample_small_tasks(medium_cluster, 5, seed=2)
        with pytest.raises(ValueError):
            TaskUpdateStream(medium_cluster, tasks, node_fraction=0.0)
        with pytest.raises(ValueError):
            TaskUpdateStream(medium_cluster, tasks, attr_fraction=2.0)

    def test_rejects_empty_tasks(self, medium_cluster):
        with pytest.raises(ValueError):
            TaskUpdateStream(medium_cluster, [])
