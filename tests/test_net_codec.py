"""Property and rejection tests for the wire codec (`repro.net.codec`)."""

import json
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import NodeAttributePair
from repro.net.codec import (
    CODEC_JSON,
    CODEC_MSGPACK,
    COMPAT_VERSIONS,
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CodecError,
    FrameDecoder,
    FrameError,
    decode_header,
    decode_payload,
    encode_frame,
    encode_payload,
    envelope_from_obj,
    envelope_to_obj,
)
from repro.obs.trace import TraceContext
from repro.runtime.messages import (
    HeartbeatEnvelope,
    StopEnvelope,
    TickEnvelope,
    UpdateEnvelope,
)
from repro.simulation.messages import Reading

_HEADER = struct.Struct(">HBBqI")

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
node_ids = st.integers(min_value=0, max_value=2**31)
attr_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=8
)
periods = st.integers(min_value=0, max_value=2**31)

ticks = st.builds(TickEnvelope, period=periods, sent_monotonic=finite)
heartbeats = st.builds(HeartbeatEnvelope, sender=node_ids, period=periods)
stops = st.just(StopEnvelope())
updates = st.builds(
    UpdateEnvelope,
    sender=node_ids,
    tree=st.frozensets(attr_names, min_size=1, max_size=4),
    period=periods,
    payload=st.dictionaries(
        st.builds(NodeAttributePair, node=node_ids, attribute=attr_names),
        st.builds(Reading, value=finite, sampled_at=finite),
        max_size=6,
    ),
)
envelopes = st.one_of(ticks, heartbeats, stops, updates)

#: Destinations span the full signed-64-bit header field (control
#: addresses are negative).
dests = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestRoundTripProperties:
    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    @given(envelope=envelopes)
    def test_obj_round_trip(self, envelope):
        assert envelope_from_obj(envelope_to_obj(envelope)) == envelope

    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    @given(envelope=envelopes)
    def test_payload_round_trip(self, envelope):
        codec, payload = encode_payload(envelope, CODEC_JSON)
        assert codec == CODEC_JSON
        assert decode_payload(codec, payload) == envelope

    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    @given(envelope=envelopes, dest=dests)
    def test_frame_round_trip(self, envelope, dest):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(dest, envelope))
        assert frames == [(dest, envelope)]
        assert decoder.buffered == 0

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(
        batch=st.lists(st.tuples(dests, envelopes), min_size=1, max_size=5),
        chunk=st.integers(min_value=1, max_value=64),
    )
    def test_arbitrary_chunking_preserves_frames(self, batch, chunk):
        # However the socket slices the stream, the decoder emits the
        # identical frame sequence.
        stream = b"".join(encode_frame(dest, env) for dest, env in batch)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[start : start + chunk]))
        assert out == batch
        assert decoder.buffered == 0


class TestTraceContext:
    """The optional ``tc`` envelope field added by wire version 2."""

    CTX = TraceContext(trace_id="0af7651916cd43dd8448eb211c80319c", span_id=0x1234ABCD5678)

    def test_tick_trace_context_survives_json(self):
        tick = TickEnvelope(period=3, trace_ctx=self.CTX)
        codec, payload = encode_payload(tick, CODEC_JSON)
        assert decode_payload(codec, payload).trace_ctx == self.CTX

    def test_update_trace_context_survives_preferred_codec(self):
        # Whichever codec the deployment lands on (msgpack when the
        # dependency is present, the JSON fallback otherwise), the
        # context must come back intact.
        update = UpdateEnvelope(
            sender=7, tree=frozenset({"cpu"}), period=2, payload={}, trace_ctx=self.CTX
        )
        try:
            import msgpack  # noqa: F401

            codec, payload = encode_payload(update, CODEC_MSGPACK)
        except ImportError:
            codec, payload = encode_payload(update, CODEC_JSON)
        assert decode_payload(codec, payload).trace_ctx == self.CTX

    def test_absent_trace_context_decodes_to_none(self):
        obj = envelope_to_obj(TickEnvelope(period=1))
        assert "tc" not in obj
        assert envelope_from_obj(obj).trace_ctx is None

    def test_version1_frame_without_tc_still_decodes(self):
        # A frame hand-built by an old (version-1) peer: same payload
        # schema minus the tc field.  New builds must keep decoding it.
        payload = json.dumps(
            {"kind": "tick", "period": 9, "sent_monotonic": 0.0}
        ).encode()
        header = _HEADER.pack(MAGIC, 1, CODEC_JSON, 5, len(payload))
        frames = FrameDecoder().feed(header + payload)
        assert frames == [(5, TickEnvelope(period=9, sent_monotonic=0.0))]
        assert frames[0][1].trace_ctx is None

    def test_compat_set_covers_both_versions(self):
        assert PROTOCOL_VERSION == 2
        assert COMPAT_VERSIONS == frozenset({1, 2})

    @pytest.mark.parametrize(
        "tc",
        [
            ["not-hex-and-short", 1],
            ["zz" * 16, 1],  # right length, not hex
            "0af7651916cd43dd8448eb211c80319c",  # not a pair
            ["0af7651916cd43dd8448eb211c80319c"],  # missing the span id
        ],
    )
    def test_malformed_trace_context_rejected(self, tc):
        obj = envelope_to_obj(TickEnvelope(period=1))
        obj["tc"] = tc
        with pytest.raises(CodecError):
            envelope_from_obj(obj)


class TestRejection:
    def test_truncated_header_and_payload_stay_buffered(self):
        tick = TickEnvelope(period=1)
        frame = encode_frame(3, tick)
        decoder = FrameDecoder()
        assert decoder.feed(frame[: HEADER_BYTES - 1]) == []
        assert decoder.feed(frame[HEADER_BYTES - 1 : -1]) == []
        assert decoder.buffered == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [(3, tick)]

    def test_bad_magic_rejected(self):
        header = _HEADER.pack(0xDEAD, PROTOCOL_VERSION, CODEC_JSON, 0, 0)
        with pytest.raises(FrameError, match="magic"):
            decode_header(header)

    def test_version_mismatch_refused(self):
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION + 1, CODEC_JSON, 0, 0)
        with pytest.raises(FrameError, match="version"):
            decode_header(header)

    def test_oversized_length_prefix_refused(self):
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, CODEC_JSON, 0, MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
            decode_header(header)

    def test_garbage_stream_raises_through_decoder(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(b"\x00" * 64)

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(CodecError, match="codec"):
            decode_payload(7, b"{}")

    def test_unknown_envelope_kind_rejected(self):
        payload = json.dumps({"kind": "warp"}).encode()
        with pytest.raises(CodecError, match="kind"):
            decode_payload(CODEC_JSON, payload)

    def test_malformed_known_kind_rejected(self):
        payload = json.dumps({"kind": "tick"}).encode()  # missing period
        with pytest.raises(CodecError, match="malformed"):
            decode_payload(CODEC_JSON, payload)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(CodecError, match="mapping"):
            envelope_from_obj([1, 2, 3])

    def test_json_garbage_payload_rejected(self):
        with pytest.raises(CodecError, match="JSON"):
            decode_payload(CODEC_JSON, b"\xff\xfe")

    def test_msgpack_frames_need_msgpack(self):
        # Regardless of whether msgpack is installed, the codec id must
        # resolve deliberately: missing-dependency decodes raise rather
        # than guessing a format.
        try:
            import msgpack  # noqa: F401
        except ImportError:
            with pytest.raises(CodecError, match="msgpack"):
                decode_payload(CODEC_MSGPACK, b"\x80")
        else:
            codec, payload = encode_payload(StopEnvelope(), CODEC_MSGPACK)
            assert decode_payload(codec, payload) == StopEnvelope()

    def test_unencodable_envelope_rejected(self):
        class Mystery:
            pass

        with pytest.raises(CodecError):
            envelope_to_obj(Mystery())
