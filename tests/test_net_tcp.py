"""Tests for :class:`repro.net.TcpTransport` on localhost sockets."""

import asyncio

import pytest

from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.net import PeerDirectory, TcpTransport
from repro.net.deploy import allocate_endpoints
from repro.obs import names
from repro.runtime import MonitoringRuntime, RuntimeConfig
from repro.runtime.messages import HeartbeatEnvelope, TickEnvelope
from repro.runtime.transport import UnknownAddressError
from repro.simulation import MonitoringSimulation, SimulationConfig

COST = CostModel(2.0, 1.0)


async def _started_pair():
    """Two transports, A routing to B's listener for addresses 1 and 2."""
    b = TcpTransport(PeerDirectory())
    b.register(1)
    b.register(2)
    endpoint = await b.start()
    a = TcpTransport(PeerDirectory({1: endpoint, 2: endpoint}))
    return a, b


async def _recv(transport, address, timeout=5.0):
    envelope = await transport.recv(address, timeout=timeout)
    assert envelope is not None, f"timed out waiting on address {address}"
    return envelope


class TestWireDelivery:
    def test_cross_transport_send_and_pooling(self):
        async def scenario():
            a, b = await _started_pair()
            try:
                first = HeartbeatEnvelope(sender=9, period=0)
                second = HeartbeatEnvelope(sender=9, period=1)
                assert await a.send(1, first)
                assert await a.send(2, second)
                assert await _recv(b, 1) == first
                assert await _recv(b, 2) == second
                # Two addresses, one endpoint: the pool holds one link.
                assert len(a._links) == 1
            finally:
                await a.aclose()
                await b.aclose()

        asyncio.run(scenario())

    def test_unroutable_address_returns_false(self):
        async def scenario():
            a = TcpTransport(PeerDirectory())
            try:
                assert not await a.send(42, HeartbeatEnvelope(sender=0, period=0))
            finally:
                await a.aclose()

        asyncio.run(scenario())

    def test_recv_on_unregistered_address_raises(self):
        async def scenario():
            a = TcpTransport(PeerDirectory())
            try:
                with pytest.raises(UnknownAddressError):
                    await a.recv(7, timeout=0.01)
            finally:
                await a.aclose()

        asyncio.run(scenario())

    def test_local_fast_path_skips_the_wire(self):
        async def scenario():
            a = TcpTransport(PeerDirectory())
            a.register(5)
            try:
                envelope = TickEnvelope(period=0)
                assert await a.send(5, envelope)
                assert await _recv(a, 5) == envelope
                assert a.metrics.registry.counter_total(names.NET_FRAMES_SENT) == 0.0
            finally:
                await a.aclose()

        asyncio.run(scenario())

    def test_force_wire_loops_through_the_socket(self):
        async def scenario():
            endpoint = allocate_endpoints(1)[0]
            a = TcpTransport(
                PeerDirectory(default=endpoint),
                listen_host=endpoint.host,
                listen_port=endpoint.port,
                force_wire=True,
            )
            a.register(5)
            try:
                envelope = HeartbeatEnvelope(sender=5, period=0)
                assert await a.send(5, envelope)
                assert await _recv(a, 5) == envelope
                registry = a.metrics.registry
                assert registry.counter_total(names.NET_FRAMES_SENT) == 1.0
                assert registry.counter_total(names.NET_FRAMES_RECEIVED) == 1.0
            finally:
                await a.aclose()

        asyncio.run(scenario())

    def test_unknown_inbound_address_counted_and_dropped(self):
        async def scenario():
            a, b = await _started_pair()
            # A believes address 3 lives at B, but B never registered it.
            a.directory.assign([3], b.endpoint)
            try:
                assert await a.send(3, HeartbeatEnvelope(sender=0, period=0))
                registry = b.metrics.registry
                deadline = asyncio.get_event_loop().time() + 5.0
                while asyncio.get_event_loop().time() < deadline:
                    if registry.counter(
                        names.NET_FRAMES_DROPPED, reason="unknown_address"
                    ):
                        break
                    await asyncio.sleep(0.01)
                assert registry.counter(
                    names.NET_FRAMES_DROPPED, reason="unknown_address"
                ) == 1.0
            finally:
                await a.aclose()
                await b.aclose()

        asyncio.run(scenario())


class TestReconnect:
    def test_sender_survives_peer_restart(self):
        async def scenario():
            endpoint = allocate_endpoints(1)[0]
            b = TcpTransport(
                PeerDirectory(), listen_host=endpoint.host, listen_port=endpoint.port
            )
            b.register(1)
            await b.start()
            a = TcpTransport(
                PeerDirectory({1: endpoint}), dial_backoff_base=0.01
            )
            try:
                first = HeartbeatEnvelope(sender=7, period=0)
                assert await a.send(1, first)
                assert await _recv(b, 1) == first

                # Kill the peer outright, then bring a fresh one up on
                # the same port: the link must redial and deliver.  The
                # transport is at-most-once, so the frame in flight when
                # the peer died may be lost (the kernel accepts a write
                # before the RST lands) -- keep sending until one lands.
                await b.aclose()
                b = TcpTransport(
                    PeerDirectory(),
                    listen_host=endpoint.host,
                    listen_port=endpoint.port,
                )
                b.register(1)
                await b.start()
                delivered = None
                deadline = asyncio.get_event_loop().time() + 5.0
                period = 1
                while delivered is None:
                    assert asyncio.get_event_loop().time() < deadline, (
                        "link never redialed the restarted peer"
                    )
                    assert await a.send(1, HeartbeatEnvelope(sender=7, period=period))
                    period += 1
                    delivered = await b.recv(1, timeout=0.2)
                assert delivered.sender == 7
            finally:
                await a.aclose()
                await b.aclose()

        asyncio.run(scenario())

    def test_corrupt_stream_dropped_and_counted(self):
        async def scenario():
            a, b = await _started_pair()
            try:
                reader, writer = await asyncio.open_connection(
                    *b.endpoint.as_pair()
                )
                writer.write(b"\x00" * 64)
                await writer.drain()
                registry = b.metrics.registry
                deadline = asyncio.get_event_loop().time() + 5.0
                while asyncio.get_event_loop().time() < deadline:
                    if registry.counter(names.NET_FRAMES_DROPPED, reason="corrupt"):
                        break
                    await asyncio.sleep(0.01)
                assert registry.counter(
                    names.NET_FRAMES_DROPPED, reason="corrupt"
                ) == 1.0
                writer.close()
            finally:
                await a.aclose()
                await b.aclose()

        asyncio.run(scenario())


class TestRuntimeParityOverTcp:
    #: Same acceptance bar as the in-process parity suite.
    TOLERANCE = 0.05

    def test_runtime_over_tcp_matches_simulator(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = ForestBuilder(COST).build(
            Partition.singletons({"a", "b"}), pairs, small_cluster
        )
        seed, periods = 9, 8
        sim_stats = MonitoringSimulation(
            plan,
            small_cluster,
            registry=MetricRegistry(plan.pairs, seed=seed),
            config=SimulationConfig(seed=seed),
        ).run(periods)

        endpoint = allocate_endpoints(1)[0]
        transport = TcpTransport(
            PeerDirectory(default=endpoint),
            listen_host=endpoint.host,
            listen_port=endpoint.port,
            force_wire=True,
        )
        runtime_report = MonitoringRuntime(
            plan,
            small_cluster,
            registry=MetricRegistry(plan.pairs, seed=seed),
            config=RuntimeConfig(period_seconds=0.05, seed=seed),
            transport=transport,
        ).run(periods)

        sim_coverage = sum(p.received_fraction for p in sim_stats.periods) / len(
            sim_stats.periods
        )
        assert runtime_report.mean_coverage == pytest.approx(
            sim_coverage, abs=self.TOLERANCE
        )
        # Every envelope made a real socket round trip.
        frames = runtime_report.metrics.registry.counter_total(names.NET_FRAMES_SENT)
        assert frames > 0
