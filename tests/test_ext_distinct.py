"""Tests for the sampling-based DISTINCT cardinality estimator."""

import random

import pytest

from repro.core.cost import AggregationKind, AggregationSpec
from repro.ext.distinct import DistinctEstimator, KMVSketch


class TestKMVSketch:
    def test_exact_below_k(self):
        sketch = KMVSketch(k=32)
        for v in range(10):
            sketch.add(float(v))
        assert sketch.estimate() == pytest.approx(10.0)

    def test_duplicates_do_not_inflate(self):
        sketch = KMVSketch(k=32)
        for _ in range(100):
            sketch.add(42.0)
        assert sketch.estimate() == pytest.approx(1.0)
        assert sketch.observations == 100

    def test_estimate_accuracy_at_scale(self):
        sketch = KMVSketch(k=256)
        rng = random.Random(7)
        truth = 5000
        values = [float(i) for i in range(truth)]
        rng.shuffle(values)
        for v in values:
            sketch.add(v)
        estimate = sketch.estimate()
        assert truth * 0.75 <= estimate <= truth * 1.25

    def test_empty_sketch(self):
        assert KMVSketch().estimate() == 0.0

    def test_rejects_tiny_k(self):
        with pytest.raises(ValueError):
            KMVSketch(k=1)


class TestDistinctEstimator:
    def test_cardinality_none_before_observations(self):
        assert DistinctEstimator().cardinality("x") is None

    def test_observe_many(self):
        est = DistinctEstimator(k=64)
        est.observe_many("x", [1.0, 2.0, 3.0, 1.0])
        assert est.cardinality("x") == pytest.approx(3.0)

    def test_refine_tightens_distinct(self):
        est = DistinctEstimator(k=64)
        est.observe_many("d", [1.0, 2.0, 3.0])
        agg = {"d": AggregationSpec(AggregationKind.DISTINCT)}
        refined = est.refine(agg, safety_factor=1.5)
        spec = refined["d"]
        assert spec.kind is AggregationKind.TOP_K
        assert spec.k == 5  # ceil(1.5 * 3)
        # The refined funnel beats the holistic bound for large fan-in.
        assert spec.funnel(100) < 100

    def test_refine_keeps_unobserved_holistic(self):
        est = DistinctEstimator()
        agg = {"d": AggregationSpec(AggregationKind.DISTINCT)}
        refined = est.refine(agg)
        assert refined["d"].kind is AggregationKind.DISTINCT

    def test_refine_passes_other_kinds_through(self):
        est = DistinctEstimator()
        agg = {"s": AggregationSpec(AggregationKind.SUM)}
        assert est.refine(agg)["s"].kind is AggregationKind.SUM

    def test_refine_rejects_bad_safety(self):
        with pytest.raises(ValueError):
            DistinctEstimator().refine({}, safety_factor=0.5)
