"""Property-based tests on the simulation and planning pipeline."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.core.planner import RemoPlanner
from repro.simulation import MonitoringSimulation, SimulationConfig

settings.register_profile(
    "repro-sim",
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-sim")

ATTRS = ["a", "b", "c"]


@st.composite
def clusters_and_pairs(draw):
    n = draw(st.integers(min_value=3, max_value=15))
    capacity = draw(st.floats(min_value=10.0, max_value=300.0))
    central = draw(st.floats(min_value=20.0, max_value=2000.0))
    attrs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
    nodes = [
        SimNode(i, capacity=capacity, attributes=frozenset(attrs)) for i in range(n)
    ]
    cluster = Cluster(nodes, central_capacity=central)
    pairs = pairs_for(range(n), sorted(attrs))
    return cluster, frozenset(pairs)


@given(clusters_and_pairs(), st.integers(min_value=1, max_value=6))
def test_simulation_conserves_messages(setup, periods):
    """delivered + dropped(any cause) == sent; coverage in [0, 1]."""
    cluster, pairs = setup
    cost = CostModel(3.0, 1.0)
    plan = ForestBuilder(cost).build(
        Partition.singletons({p.attribute for p in pairs}), pairs, cluster
    )
    stats = MonitoringSimulation(
        plan, cluster, config=SimulationConfig(seed=1)
    ).run(periods)
    assert stats.messages_delivered + stats.messages_dropped_failure <= stats.messages_sent
    assert 0.0 <= stats.mean_fresh_coverage <= 1.0
    assert 0.0 <= stats.mean_percentage_error <= 1.0
    assert len(stats.periods) == periods


@given(clusters_and_pairs())
def test_feasible_plans_run_drop_free(setup):
    """A plan that satisfies the analytic model never drops in the sim."""
    cluster, pairs = setup
    cost = CostModel(3.0, 1.0)
    plan = ForestBuilder(cost).build(
        Partition.singletons({p.attribute for p in pairs}), pairs, cluster
    )
    stats = MonitoringSimulation(
        plan, cluster, config=SimulationConfig(seed=2)
    ).run(3)
    assert stats.messages_dropped_capacity == 0
    assert stats.values_trimmed == 0


@given(clusters_and_pairs())
def test_remo_never_collects_less_than_singleton(setup):
    """The local search starts at/above the SP baseline by construction."""
    cluster, pairs = setup
    cost = CostModel(3.0, 1.0)
    sp_plan = ForestBuilder(cost).build(
        Partition.singletons({p.attribute for p in pairs}), pairs, cluster
    )
    remo_plan = RemoPlanner(cost, candidate_budget=4, max_iterations=6).plan(
        pairs, cluster
    )
    assert remo_plan.collected_pair_count() >= sp_plan.collected_pair_count()


@given(clusters_and_pairs())
def test_plan_validate_always_passes_for_built_plans(setup):
    cluster, pairs = setup
    cost = CostModel(3.0, 1.0)
    plan = RemoPlanner(cost, candidate_budget=4, max_iterations=6).plan(pairs, cluster)
    plan.validate(
        {n.node_id: n.capacity for n in cluster}, cluster.central_capacity
    )


@given(clusters_and_pairs())
def test_simulated_freshness_matches_coverage_when_shallow(setup):
    """With negligible hop latency and no failures, freshness equals the
    plan's analytic coverage."""
    cluster, pairs = setup
    cost = CostModel(3.0, 1.0)
    plan = ForestBuilder(cost).build(
        Partition.singletons({p.attribute for p in pairs}), pairs, cluster
    )
    stats = MonitoringSimulation(
        plan, cluster, config=SimulationConfig(seed=3, hop_latency=1e-4)
    ).run(3)
    assert abs(stats.mean_fresh_coverage - plan.coverage()) < 1e-6
