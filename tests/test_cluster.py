"""Unit tests for the cluster substrate."""

import pytest

from repro.cluster.node import Cluster, SimNode
from repro.cluster.topology import (
    default_attribute_pool,
    make_heterogeneous_cluster,
    make_uniform_cluster,
)
from repro.core.attributes import NodeAttributePair


class TestSimNode:
    def test_observes(self):
        node = SimNode(0, 10.0, frozenset({"cpu"}))
        assert node.observes("cpu")
        assert not node.observes("mem")

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            SimNode(-1, 10.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SimNode(0, 0.0)


class TestCluster:
    def test_lookup_and_len(self):
        cluster = Cluster([SimNode(0, 5.0), SimNode(1, 6.0)], central_capacity=10.0)
        assert len(cluster) == 2
        assert cluster.node(1).capacity == 6.0
        assert cluster.capacity(0) == 5.0
        assert 0 in cluster and 7 not in cluster

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Cluster([SimNode(0, 5.0), SimNode(0, 6.0)], central_capacity=10.0)

    def test_nonpositive_central_rejected(self):
        with pytest.raises(ValueError):
            Cluster([SimNode(0, 5.0)], central_capacity=0.0)

    def test_validate_pairs(self):
        cluster = Cluster(
            [SimNode(0, 5.0, frozenset({"a"}))], central_capacity=10.0
        )
        cluster.validate_pairs([NodeAttributePair(0, "a")])
        with pytest.raises(ValueError):
            cluster.validate_pairs([NodeAttributePair(0, "b")])
        with pytest.raises(ValueError):
            cluster.validate_pairs([NodeAttributePair(9, "a")])

    def test_observable_pairs(self):
        cluster = Cluster(
            [SimNode(0, 5.0, frozenset({"a", "b"})), SimNode(1, 5.0, frozenset({"a"}))],
            central_capacity=10.0,
        )
        assert len(cluster.observable_pairs()) == 3

    def test_total_capacity(self):
        cluster = Cluster([SimNode(0, 5.0), SimNode(1, 7.0)], central_capacity=10.0)
        assert cluster.total_capacity() == pytest.approx(12.0)


class TestGenerators:
    def test_default_pool_names(self):
        pool = default_attribute_pool(12)
        assert len(pool) == 12
        assert len(set(pool)) == 12

    def test_uniform_cluster_shape(self):
        cluster = make_uniform_cluster(10, capacity=50.0, attrs_per_node=4, seed=1)
        assert len(cluster) == 10
        for node in cluster:
            assert node.capacity == 50.0
            assert len(node.attributes) == 4

    def test_uniform_cluster_deterministic_by_seed(self):
        c1 = make_uniform_cluster(10, 50.0, seed=5)
        c2 = make_uniform_cluster(10, 50.0, seed=5)
        for n1, n2 in zip(c1, c2):
            assert n1.attributes == n2.attributes

    def test_uniform_rejects_oversized_attr_request(self):
        with pytest.raises(ValueError):
            make_uniform_cluster(4, 10.0, attrs_per_node=5, attribute_pool=["a", "b"])

    def test_heterogeneous_capacities_in_range(self):
        cluster = make_heterogeneous_cluster(
            20, capacity_low=10.0, capacity_high=40.0, seed=3
        )
        for node in cluster:
            assert 10.0 <= node.capacity <= 40.0

    def test_heterogeneous_rejects_bad_range(self):
        with pytest.raises(ValueError):
            make_heterogeneous_cluster(5, capacity_low=10.0, capacity_high=5.0)

    def test_default_central_capacity_scales(self):
        cluster = make_uniform_cluster(5, capacity=100.0, seed=1)
        assert cluster.central_capacity == pytest.approx(400.0)
