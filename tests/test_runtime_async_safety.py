"""Regression tests for the async-safety fixes the static analysis
framework surfaced (REMO414 recv timeouts, REMO421 retire ordering).

The findings: agent/collector inbox loops awaited ``transport.recv``
with no timeout (a dropped stop message would hang them forever on a
real socket transport), and ``NodeAgent._retire_period_tasks`` read
and cleared ``self._period_tasks`` across an ``await`` (a lost-update
window).  These tests pin the fixed behaviour.
"""

import asyncio

import pytest

from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.runtime import (
    InProcessTransport,
    MonitoringRuntime,
    RuntimeConfig,
    StopEnvelope,
)

COST = CostModel(2.0, 1.0)


def small_runtime(**config_kwargs):
    nodes = [SimNode(i, capacity=100.0, attributes=frozenset({"a"})) for i in range(4)]
    cluster = Cluster(nodes, central_capacity=400.0)
    pairs = pairs_for(range(4), ["a"])
    plan = ForestBuilder(COST).build(Partition.one_set(["a"]), pairs, cluster)
    config = RuntimeConfig(period_seconds=0.02, seed=1, **config_kwargs)
    return MonitoringRuntime(plan, cluster, config=config)


class RecordingTransport(InProcessTransport):
    """InProcessTransport that records the timeout of every recv."""

    def __init__(self):
        super().__init__()
        self.recv_timeouts = []

    async def recv(self, address, timeout=None):
        self.recv_timeouts.append(timeout)
        return await super().recv(address, timeout)


class TestRecvTimeouts:
    def test_run_loops_always_recv_with_timeout(self):
        """REMO414 regression: no inbox await may lack a timeout guard."""
        transport = RecordingTransport()
        runtime = small_runtime(recv_timeout_seconds=0.5)
        runtime.transport = transport
        for agent in runtime.agents.values():
            agent.transport = transport
        runtime.collector.transport = transport
        runtime.run(2)
        assert transport.recv_timeouts, "run loops never touched the transport"
        assert all(t == 0.5 for t in transport.recv_timeouts)

    def test_agent_loop_survives_recv_timeouts(self):
        """A timed-out recv (None envelope) re-checks the inbox instead
        of crashing or treating None as a message."""
        runtime = small_runtime(recv_timeout_seconds=0.01)
        agent = next(iter(runtime.agents.values()))
        transport = runtime.transport

        async def scenario():
            transport.register(agent.node_id)
            task = asyncio.ensure_future(agent.run())
            await asyncio.sleep(0.05)  # several recv timeouts elapse
            assert not task.done()
            await transport.send(agent.node_id, StopEnvelope())
            await asyncio.wait_for(task, timeout=1.0)

        asyncio.run(scenario())

    def test_collector_loop_survives_recv_timeouts(self):
        from repro.runtime import COLLECTOR_ADDRESS

        runtime = small_runtime(recv_timeout_seconds=0.01)
        transport = runtime.transport

        async def scenario():
            transport.register(COLLECTOR_ADDRESS)
            task = asyncio.ensure_future(runtime.collector.run())
            await asyncio.sleep(0.05)
            assert not task.done()
            await transport.send(COLLECTOR_ADDRESS, StopEnvelope())
            await asyncio.wait_for(task, timeout=1.0)

        asyncio.run(scenario())

    def test_recv_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            RuntimeConfig(recv_timeout_seconds=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(recv_timeout_seconds=-1.0)


class TestRetirePeriodTasks:
    def test_retire_awaits_pending_and_clears(self):
        runtime = small_runtime()
        agent = next(iter(runtime.agents.values()))
        ran = []

        async def period_work(tag):
            await asyncio.sleep(0.01)
            ran.append(tag)

        async def scenario():
            agent._period_tasks = {
                asyncio.ensure_future(period_work("x")),
                asyncio.ensure_future(period_work("y")),
            }
            await agent._retire_period_tasks()
            assert sorted(ran) == ["x", "y"]
            assert agent._period_tasks == set()

        asyncio.run(scenario())

    def test_retire_clears_before_awaiting(self):
        """REMO421 regression: the set must be cleared *before* the
        gather, so nothing added or discarded during the await can be
        lost by a clear that runs after it."""
        runtime = small_runtime()
        agent = next(iter(runtime.agents.values()))
        observed = []

        async def snooping_task():
            await asyncio.sleep(0)  # let _retire reach its await first
            observed.append(set(agent._period_tasks))

        async def scenario():
            agent._period_tasks = {asyncio.ensure_future(snooping_task())}
            await agent._retire_period_tasks()
            # The task saw the set already emptied while it was awaited.
            assert observed == [set()]

        asyncio.run(scenario())
