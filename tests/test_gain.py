"""Unit tests for the guided-search gain estimator."""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.gain import GainContext, estimate_gain, rank_candidates
from repro.core.partition import MergeOp, SplitOp


def ctx_for(pairs, cost=None, uncollected=None):
    return GainContext.from_pairs(pairs, cost or CostModel(2.0, 1.0), uncollected)


class TestContext:
    def test_node_masks(self):
        ctx = ctx_for(pairs_for([0, 2], ["a"]))
        assert ctx.node_masks["a"] == 0b101

    def test_set_mask_unions_attributes(self):
        ctx = ctx_for(pairs_for([0], ["a"]) | pairs_for([1], ["b"]))
        assert ctx.set_mask(frozenset({"a", "b"})) == 0b11

    def test_pair_volume(self):
        ctx = ctx_for(pairs_for([0, 1, 2], ["a", "b"]))
        assert ctx.pair_volume(frozenset({"a"})) == 3
        assert ctx.pair_volume(frozenset({"a", "b"})) == 6


class TestMergeGain:
    def test_shared_nodes_drive_gain(self):
        """Merge gain: 2*C per shared node (send + recv folded) plus C
        freed at the collector (two root messages become one)."""
        cost = CostModel(per_message=5.0, per_value=1.0)
        ctx = ctx_for(pairs_for(range(4), ["a", "b"]), cost=cost)
        op = MergeOp(frozenset({"a"}), frozenset({"b"}))
        assert estimate_gain(op, ctx) == pytest.approx(2 * 5.0 * 4 + 5.0)

    def test_disjoint_sets_are_hopeless(self):
        ctx = ctx_for(pairs_for([0, 1], ["a"]) | pairs_for([2, 3], ["b"]))
        op = MergeOp(frozenset({"a"}), frozenset({"b"}))
        assert estimate_gain(op, ctx) == float("-inf")

    def test_uses_collected_masks_when_available(self):
        """An empty (saturated-away) tree frees nothing: its merges must
        rank below merges of two live trees."""
        pairs = pairs_for(range(6), ["a", "b", "c"])
        full = 0b111111
        collected = {
            frozenset({"a"}): full,
            frozenset({"b"}): full,
            frozenset({"c"}): 0,  # tree collapsed: no members
        }
        ctx = ctx_for(pairs)
        ctx.collected_masks = collected
        live_merge = estimate_gain(MergeOp(frozenset({"a"}), frozenset({"b"})), ctx)
        dead_merge = estimate_gain(MergeOp(frozenset({"b"}), frozenset({"c"})), ctx)
        assert live_merge > dead_merge

    def test_recovery_credit_for_uncollected_pairs(self):
        """Merging a live tree with a starving one can recover pairs."""
        pairs = pairs_for(range(6), ["a", "b"])
        ctx = ctx_for(pairs, uncollected={frozenset({"b"}): 4})
        base = estimate_gain(
            MergeOp(frozenset({"a"}), frozenset({"b"})),
            ctx_for(pairs, uncollected={}),
        )
        with_recovery = estimate_gain(MergeOp(frozenset({"a"}), frozenset({"b"})), ctx)
        assert with_recovery > base

    def test_more_overlap_more_gain(self):
        few = ctx_for(pairs_for([0], ["a", "b"]) | pairs_for([1, 2], ["a"]))
        many = ctx_for(pairs_for([0, 1, 2], ["a", "b"]))
        op = MergeOp(frozenset({"a"}), frozenset({"b"}))
        assert estimate_gain(op, many) > estimate_gain(op, few)


class TestSplitGain:
    def test_saturated_tree_split_is_positive(self):
        pairs = pairs_for(range(8), ["a", "b"])
        ctx = ctx_for(pairs, uncollected={frozenset({"a", "b"}): 40})
        op = SplitOp(frozenset({"a", "b"}), "a")
        assert estimate_gain(op, ctx) > 0

    def test_healthy_tree_split_is_negative(self):
        pairs = pairs_for(range(8), ["a", "b"])
        ctx = ctx_for(pairs, uncollected={})
        op = SplitOp(frozenset({"a", "b"}), "a")
        assert estimate_gain(op, ctx) < 0


class TestRanking:
    def test_rank_orders_descending(self):
        pairs = pairs_for(range(6), ["a", "b"]) | pairs_for([0], ["c"])
        ctx = ctx_for(pairs)
        ops = [
            MergeOp(frozenset({"a"}), frozenset({"b"})),  # 6 shared nodes
            MergeOp(frozenset({"a"}), frozenset({"c"})),  # 1 shared node
        ]
        ranked = rank_candidates(ops, ctx)
        assert ranked[0][1].left | ranked[0][1].right == frozenset({"a", "b"})
        assert ranked[0][0] >= ranked[1][0]

    def test_budget_truncates(self):
        pairs = pairs_for(range(3), ["a", "b", "c"])
        ctx = ctx_for(pairs)
        part_ops = [
            MergeOp(frozenset({"a"}), frozenset({"b"})),
            MergeOp(frozenset({"a"}), frozenset({"c"})),
            MergeOp(frozenset({"b"}), frozenset({"c"})),
        ]
        assert len(rank_candidates(part_ops, ctx, budget=2)) == 2

    def test_hopeless_candidates_dropped(self):
        pairs = pairs_for([0], ["a"]) | pairs_for([1], ["b"])
        ctx = ctx_for(pairs)
        ranked = rank_candidates([MergeOp(frozenset({"a"}), frozenset({"b"}))], ctx)
        assert ranked == []

    def test_unknown_op_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_gain(object(), ctx_for(pairs_for([0], ["a"])))
