"""Integration tests for the monitoring simulation engine."""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.simulation import (
    FailureInjector,
    LinkOutage,
    MonitoringSimulation,
    NodeOutage,
    SimulationConfig,
)

COST = CostModel(2.0, 1.0)


def plan_for(cluster, pairs, partition=None):
    partition = partition or Partition.singletons({p.attribute for p in pairs})
    return ForestBuilder(COST).build(partition, pairs, cluster)


class TestHappyPath:
    def test_feasible_plan_runs_drop_free(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        stats = MonitoringSimulation(
            plan, small_cluster, config=SimulationConfig(seed=1)
        ).run(10)
        assert stats.messages_dropped_capacity == 0
        assert stats.messages_dropped_failure == 0
        assert stats.delivery_ratio == pytest.approx(1.0)

    def test_full_coverage_gives_low_error(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        stats = MonitoringSimulation(
            plan, small_cluster, config=SimulationConfig(seed=1)
        ).run(10)
        assert stats.mean_percentage_error < 0.05
        assert stats.mean_fresh_coverage == pytest.approx(1.0)

    def test_uncovered_pairs_drive_error(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b", "c", "d"])
        plan = plan_for(tight_cluster, pairs)
        assert plan.coverage() < 1.0
        stats = MonitoringSimulation(
            plan, tight_cluster, config=SimulationConfig(seed=1)
        ).run(10)
        # Every uncovered pair contributes ~100% error.
        assert stats.mean_percentage_error >= (1.0 - plan.coverage()) * 0.9

    def test_message_counts_match_topology(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        stats = MonitoringSimulation(
            plan, small_cluster, config=SimulationConfig(seed=1)
        ).run(5)
        expected_per_period = sum(len(r.tree) for r in plan.trees.values())
        assert stats.messages_sent == expected_per_period * 5

    def test_deterministic_given_seed(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        s1 = MonitoringSimulation(plan, small_cluster, config=SimulationConfig(seed=4)).run(8)
        s2 = MonitoringSimulation(plan, small_cluster, config=SimulationConfig(seed=4)).run(8)
        assert s1.mean_percentage_error == pytest.approx(s2.mean_percentage_error)

    def test_rejects_nonpositive_periods(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        sim = MonitoringSimulation(plan, small_cluster)
        with pytest.raises(ValueError):
            sim.run(0)


class TestLatencyStaleness:
    def test_deep_tree_staler_than_flat(self, small_cluster):
        """A chain whose wave exceeds the period delivers one period late."""
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        # hop_latency so large that (H+1) hops > period for any tree
        # deeper than 2.
        slow = SimulationConfig(period=1.0, hop_latency=0.4, seed=1)
        fast = SimulationConfig(period=1.0, hop_latency=0.001, seed=1)
        stale = MonitoringSimulation(plan, small_cluster, config=slow).run(10)
        fresh = MonitoringSimulation(plan, small_cluster, config=fast).run(10)
        assert stale.mean_fresh_coverage <= fresh.mean_fresh_coverage


class TestFailures:
    def test_link_outage_drops_messages(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        # Find a non-root edge to sever.
        attr_set = frozenset({"a"})
        tree = plan.trees[attr_set].tree
        child = next(n for n in tree.nodes if tree.parent(n) is not None)
        injector = FailureInjector(
            link_outages=[LinkOutage(child, attr_set, 0.0, 5.0)]
        )
        stats = MonitoringSimulation(
            plan, small_cluster, config=SimulationConfig(seed=1), failures=injector
        ).run(10)
        assert stats.messages_dropped_failure > 0

    def test_node_outage_blocks_sends(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        injector = FailureInjector(node_outages=[NodeOutage(0, 0.0, 100.0)])
        stats = MonitoringSimulation(
            plan, small_cluster, config=SimulationConfig(seed=1), failures=injector
        ).run(5)
        assert stats.messages_dropped_failure > 0
        assert stats.mean_percentage_error > 0

    def test_outage_windows_validate(self):
        with pytest.raises(ValueError):
            LinkOutage(0, frozenset({"a"}), 5.0, 5.0)
        with pytest.raises(ValueError):
            NodeOutage(0, 2.0, 1.0)

    def test_random_link_outages_respect_probability(self):
        edges = [(i, frozenset({"a"})) for i in range(100)]
        none = FailureInjector.random_link_outages(edges, 0.0, 1.0, 10.0, seed=1)
        all_ = FailureInjector.random_link_outages(edges, 1.0, 1.0, 10.0, seed=1)
        assert len(none.link_outages) == 0
        assert len(all_.link_outages) == 100


class TestConfig:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SimulationConfig(period=0.0)

    def test_rejects_bad_hop_latency(self):
        with pytest.raises(ValueError):
            SimulationConfig(hop_latency=-1.0)
