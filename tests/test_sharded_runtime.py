"""The in-process runtime hosting several collector shards."""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.core.plan import ShardedPlan
from repro.runtime import COLLECTOR_ADDRESS, MonitoringRuntime, RuntimeConfig
from repro.runtime.messages import collector_shard_address

COST = CostModel(2.0, 1.0)
FAST = dict(period_seconds=0.02, seed=1)


def plan_for(cluster, pairs):
    partition = Partition.singletons({p.attribute for p in pairs})
    return ForestBuilder(COST).build(partition, pairs, cluster)


class TestShardedRuntime:
    def test_two_shards_match_single_collector_coverage(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        single = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST)
        ).run(6)
        sharded = ShardedPlan.build(plan, 2)
        split = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST), sharded=sharded
        ).run(6)
        assert split.final_coverage == pytest.approx(single.final_coverage)
        assert split.mean_fresh_coverage == pytest.approx(
            single.mean_fresh_coverage
        )
        assert len(split.samples) == len(single.samples) == 6
        assert split.requested_pairs == single.requested_pairs

    def test_sharded_runtime_hosts_one_agent_per_shard(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        sharded = ShardedPlan.build(plan, 2)
        runtime = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST), sharded=sharded
        )
        assert set(runtime.collectors) == {
            collector_shard_address(0),
            collector_shard_address(1),
        }
        # The back-compat alias still points at the shard-0 agent.
        assert runtime.collector is runtime.collectors[COLLECTOR_ADDRESS]
        # Each shard agent scores exactly its own pair slice.
        for shard in range(2):
            agent = runtime.collectors[collector_shard_address(shard)]
            assert set(agent.requested_pairs) == set(sharded.pairs_for(shard))

    def test_sharded_plan_must_wrap_the_runtime_plan(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        other = plan_for(small_cluster, pairs_for(range(6), ["b"]))
        with pytest.raises(ValueError):
            MonitoringRuntime(
                plan,
                small_cluster,
                config=RuntimeConfig(**FAST),
                sharded=ShardedPlan.build(other, 2),
            )

    def test_merged_report_counts_every_message_once(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        members = sum(len(r.tree) for r in plan.trees.values())
        sharded = ShardedPlan.build(plan, 2)
        report = MonitoringRuntime(
            plan, small_cluster, config=RuntimeConfig(**FAST), sharded=sharded
        ).run(5)
        assert report.messages_sent == 5 * members
        assert report.messages_dropped == 0
