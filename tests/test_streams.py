"""Unit tests for the stream-processing substrate."""

import random

import pytest

from repro.core.attributes import NodeAttributePair
from repro.streams.app import OS_METRICS, StreamApp, StreamMetricRegistry, build_stream_cluster
from repro.streams.dataflow import DataflowGraph
from repro.streams.operators import OPERATOR_METRICS, Operator, OperatorKind


def small_graph():
    graph = DataflowGraph()
    graph.add_operator(Operator("src", OperatorKind.SOURCE))
    graph.add_operator(Operator("parse", OperatorKind.FUNCTOR, selectivity=0.8))
    graph.add_operator(Operator("agg", OperatorKind.AGGREGATE, selectivity=0.1))
    graph.add_operator(Operator("sink", OperatorKind.SINK))
    graph.connect("src", "parse")
    graph.connect("parse", "agg")
    graph.connect("agg", "sink")
    return graph


class TestOperator:
    def test_metrics_exposed(self):
        op = Operator("x", OperatorKind.FUNCTOR)
        assert op.metric_names() == [f"x.{m}" for m in OPERATOR_METRICS]

    def test_update_propagates_selectivity(self):
        op = Operator("x", OperatorKind.FUNCTOR, selectivity=0.5, service_rate=1000.0)
        op.update(100.0)
        assert op.rate_out == pytest.approx(50.0)
        assert op.queue == pytest.approx(0.0)

    def test_overload_grows_queue(self):
        op = Operator("x", OperatorKind.FUNCTOR, service_rate=50.0)
        op.update(100.0)
        assert op.queue == pytest.approx(50.0)
        assert op.cpu == pytest.approx(1.0)

    def test_sink_emits_nothing(self):
        op = Operator("x", OperatorKind.SINK)
        op.update(10.0)
        assert op.rate_out == 0.0

    def test_source_rate_requires_source(self):
        with pytest.raises(ValueError):
            Operator("x", OperatorKind.FUNCTOR).source_rate(random.Random(1))

    def test_metric_lookup(self):
        op = Operator("x", OperatorKind.FUNCTOR)
        op.update(10.0)
        assert op.metric("rate_in") == pytest.approx(10.0)
        with pytest.raises(KeyError):
            op.metric("bogus")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Operator("x", OperatorKind.FUNCTOR, selectivity=-1.0)
        with pytest.raises(ValueError):
            Operator("x", OperatorKind.FUNCTOR, service_rate=0.0)


class TestDataflowGraph:
    def test_topological_order_respects_edges(self):
        graph = small_graph()
        order = [op.op_id for op in graph.topological_order()]
        assert order.index("src") < order.index("parse") < order.index("agg")

    def test_cycle_rejected(self):
        graph = DataflowGraph()
        graph.add_operator(Operator("a", OperatorKind.FUNCTOR))
        graph.add_operator(Operator("b", OperatorKind.FUNCTOR))
        graph.connect("a", "b")
        with pytest.raises(ValueError):
            graph.connect("b", "a")

    def test_duplicate_operator_rejected(self):
        graph = DataflowGraph()
        graph.add_operator(Operator("a", OperatorKind.SOURCE))
        with pytest.raises(ValueError):
            graph.add_operator(Operator("a", OperatorKind.SOURCE))

    def test_sink_cannot_produce(self):
        graph = DataflowGraph()
        graph.add_operator(Operator("s", OperatorKind.SINK))
        graph.add_operator(Operator("f", OperatorKind.FUNCTOR))
        with pytest.raises(ValueError):
            graph.connect("s", "f")

    def test_source_cannot_consume(self):
        graph = DataflowGraph()
        graph.add_operator(Operator("src", OperatorKind.SOURCE))
        graph.add_operator(Operator("f", OperatorKind.FUNCTOR))
        with pytest.raises(ValueError):
            graph.connect("f", "src")

    def test_validate_flags_disconnected(self):
        graph = DataflowGraph()
        graph.add_operator(Operator("orphan", OperatorKind.FUNCTOR))
        with pytest.raises(ValueError):
            graph.validate()

    def test_sources_and_sinks(self):
        graph = small_graph()
        assert [op.op_id for op in graph.sources()] == ["src"]
        assert [op.op_id for op in graph.sinks()] == ["sink"]


class TestStreamApp:
    def make_app(self):
        graph = small_graph()
        placement = {"src": 0, "parse": 0, "agg": 1, "sink": 1}
        return StreamApp(graph, placement, seed=7)

    def test_placement_required_for_all(self):
        graph = small_graph()
        with pytest.raises(ValueError):
            StreamApp(graph, {"src": 0}, seed=1)

    def test_node_attributes_include_os_and_operators(self):
        app = self.make_app()
        attrs = app.node_attributes(0)
        assert set(OS_METRICS) <= set(attrs)
        assert "src.rate_out" in attrs
        assert "agg.queue" not in attrs  # placed on node 1

    def test_step_moves_rates_downstream(self):
        app = self.make_app()
        for _ in range(5):
            app.step()
        parse = app.graph.operator("parse")
        assert parse.rate_in > 0

    def test_metric_value_and_observes(self):
        app = self.make_app()
        assert app.observes(0, "src.rate_out")
        assert not app.observes(1, "src.rate_out")
        assert isinstance(app.metric_value(0, "src.rate_out"), float)
        assert isinstance(app.metric_value(1, "os.cpu"), float)
        with pytest.raises(KeyError):
            app.metric_value(1, "src.rate_out")

    def test_registry_interface(self):
        app = self.make_app()
        registry = StreamMetricRegistry(app)
        pair = NodeAttributePair(0, "src.rate_out")
        assert pair in registry
        before = registry.value(pair)
        registry.advance_all()
        assert isinstance(registry.value(pair), float)
        registry.ensure(pair)
        with pytest.raises(KeyError):
            registry.ensure(NodeAttributePair(0, "agg.queue"))

    def test_build_stream_cluster(self):
        app = self.make_app()
        cluster = build_stream_cluster(app, capacity=100.0)
        assert len(cluster) == 2
        assert cluster.node(0).observes("src.rate_in")
        assert cluster.central_capacity == pytest.approx(800.0)
