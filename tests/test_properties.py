"""Property-based tests (hypothesis) on core invariants.

These pin down the structural guarantees everything else rests on:
partitions always remain disjoint covers under merge/split walks,
trees never violate capacity no matter the insertion sequence, funnel
functions are monotone and bounded, the task manager's refcounts never
go negative, and plans never claim pairs they were not asked for.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.core.partition import Partition
from repro.core.tasks import MonitoringTask, TaskManager
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.trees.base import TreeBuildRequest
from repro.trees.chain import ChainTreeBuilder
from repro.trees.model import MonitoringTree
from repro.trees.star import StarTreeBuilder

ATTRS = ["a", "b", "c", "d", "e", "f"]

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# Partition invariants
# ---------------------------------------------------------------------------
@st.composite
def partitions(draw):
    attrs = draw(st.sets(st.sampled_from(ATTRS), min_size=2, max_size=6))
    # Random grouping: assign each attribute a bucket.
    buckets = {}
    for attr in sorted(attrs):
        buckets.setdefault(draw(st.integers(0, len(attrs) - 1)), set()).add(attr)
    return Partition(buckets.values())


@given(partitions(), st.randoms(use_true_random=False))
def test_random_walks_preserve_partition_laws(partition, rnd):
    """Any sequence of merges/splits keeps a disjoint cover of the universe."""
    universe = partition.universe
    current = partition
    for _ in range(8):
        ops = list(current.merge_ops()) + list(current.split_ops())
        if not ops:
            break
        op = rnd.choice(ops)
        current = current.apply(op)
        assert current.universe == universe
        seen = set()
        for s in current.sets:
            assert s, "no empty sets"
            assert not (seen & s), "sets stay disjoint"
            seen |= s


@given(partitions())
def test_merge_then_split_can_restore(partition):
    """Splitting a fresh 2-element merge restores an equivalent partition."""
    singles = [s for s in partition.sets if len(s) == 1]
    if len(singles) < 2:
        return
    left, right = singles[0], singles[1]
    merged = partition.merge(left, right)
    attr = next(iter(left))
    restored = merged.split(left | right, attr)
    assert restored == partition


# ---------------------------------------------------------------------------
# Funnel properties
# ---------------------------------------------------------------------------
@given(
    st.sampled_from(list(AggregationKind)),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=10_000),
)
def test_funnels_bounded_and_monotone(kind, k, incoming):
    spec = AggregationSpec(kind, k=k)
    out = spec.funnel(incoming)
    assert 0 <= out <= incoming
    assert spec.funnel(incoming + 1) >= out


# ---------------------------------------------------------------------------
# Cost model properties
# ---------------------------------------------------------------------------
@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.01, max_value=100.0),
    st.integers(min_value=0, max_value=1000),
)
def test_message_cost_affine(c, a, x):
    model = CostModel(c, a)
    assert model.message_cost(x) == c + a * x
    assert model.message_cost(x + 1) > model.message_cost(x)


# ---------------------------------------------------------------------------
# Task manager refcount invariants
# ---------------------------------------------------------------------------
@st.composite
def task_scripts(draw):
    """A random sequence of add/remove/modify operations."""
    n_ops = draw(st.integers(1, 12))
    script = []
    live = set()
    for i in range(n_ops):
        if live and draw(st.booleans()):
            tid = draw(st.sampled_from(sorted(live)))
            if draw(st.booleans()):
                script.append(("remove", tid, None, None))
                live.discard(tid)
            else:
                attrs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
                nodes = draw(st.sets(st.integers(0, 5), min_size=1, max_size=4))
                script.append(("modify", tid, attrs, nodes))
        else:
            tid = f"t{i}"
            attrs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
            nodes = draw(st.sets(st.integers(0, 5), min_size=1, max_size=4))
            script.append(("add", tid, attrs, nodes))
            live.add(tid)
    return script


@given(task_scripts())
def test_task_manager_pairs_always_equal_union(script):
    manager = TaskManager()
    for op, tid, attrs, nodes in script:
        if op == "add":
            manager.add_task(MonitoringTask(tid, attrs, nodes))
        elif op == "remove":
            manager.remove_task(tid)
        else:
            manager.modify_task(MonitoringTask(tid, attrs, nodes))
        expected = set()
        for task in manager:
            expected |= task.pairs()
        assert manager.pairs() == expected
        for pair in expected:
            assert manager.multiplicity(pair) >= 1


# ---------------------------------------------------------------------------
# Tree construction invariants
# ---------------------------------------------------------------------------
@st.composite
def build_requests(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    capacity = draw(st.floats(min_value=6.0, max_value=200.0))
    attrs = draw(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
    demands = {}
    for i in range(n):
        node_attrs = draw(
            st.sets(st.sampled_from(sorted(attrs)), min_size=1, max_size=len(attrs))
        )
        demands[i] = {a: 1.0 for a in node_attrs}
    central = draw(st.floats(min_value=10.0, max_value=2000.0))
    return TreeBuildRequest(
        attributes=frozenset(attrs),
        demands=demands,
        capacities={i: capacity for i in range(n)},
        central_capacity=central,
    )


@given(build_requests(), st.sampled_from([StarTreeBuilder, ChainTreeBuilder, AdaptiveTreeBuilder]))
def test_builders_always_produce_valid_trees(request, builder_cls):
    cost = CostModel(2.0, 1.0)
    result = builder_cls(cost).build(request)
    result.tree.validate()
    included = set(result.tree.nodes)
    excluded = set(result.excluded)
    candidates = {i for i, d in request.demands.items() if d}
    assert included | excluded == candidates
    assert not (included & excluded)


@given(build_requests())
def test_adaptive_dominates_star(request):
    """The construct/adjust iteration never collects fewer pairs than
    pure STAR (it starts from STAR and only improves)."""
    cost = CostModel(2.0, 1.0)
    star = StarTreeBuilder(cost).build(request)
    adaptive = AdaptiveTreeBuilder(cost).build(request)
    assert adaptive.tree.pair_count() >= star.tree.pair_count()


@given(st.data())
def test_branch_moves_keep_tree_valid(data):
    """Random feasible attach/move sequences never corrupt bookkeeping."""
    cost = CostModel(2.0, 1.0)
    caps = {i: 60.0 for i in range(12)}
    tree = MonitoringTree(("a",), cost, caps, central_capacity=500.0)
    tree.add_node(0, None, {"a": 1.0})
    for i in range(1, 12):
        parent = data.draw(st.sampled_from(tree.nodes), label="parent")
        tree.add_node(i, parent, {"a": 1.0})
    for _ in range(6):
        nodes = [n for n in tree.nodes if tree.parent(n) is not None]
        if not nodes:
            break
        branch = data.draw(st.sampled_from(nodes), label="branch")
        subtree = set(tree.subtree_nodes(branch))
        targets = [n for n in tree.nodes if n not in subtree and n != tree.parent(branch)]
        if not targets:
            continue
        target = data.draw(st.sampled_from(targets), label="target")
        tree.move_branch(branch, target)
        tree.validate()
