"""Unit tests for STAR / CHAIN / MAX_AVB / ADAPTIVE tree builders."""

import math

import pytest

from repro.core.cost import CostModel
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.trees.base import GreedyTreeBuilder, TreeBuildRequest
from repro.trees.chain import ChainTreeBuilder
from repro.trees.max_avb import MaxAvailableTreeBuilder
from repro.trees.star import StarTreeBuilder

COST = CostModel(per_message=2.0, per_value=1.0)


def request(n, capacity, attrs=("a",), central=math.inf, per_node_attrs=1):
    demands = {
        i: {a: 1.0 for a in list(attrs)[:per_node_attrs]} for i in range(n)
    }
    return TreeBuildRequest(
        attributes=frozenset(attrs),
        demands=demands,
        capacities={i: capacity for i in range(n)},
        central_capacity=central,
    )


ALL_BUILDERS = [
    StarTreeBuilder,
    ChainTreeBuilder,
    MaxAvailableTreeBuilder,
    AdaptiveTreeBuilder,
]


class TestCommonBehaviour:
    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
    def test_all_nodes_fit_with_generous_capacity(self, builder_cls):
        result = builder_cls(COST).build(request(12, 1000.0))
        assert len(result.tree) == 12
        assert result.excluded == []
        result.tree.validate()

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
    def test_capacity_never_violated(self, builder_cls):
        result = builder_cls(COST).build(request(30, 15.0))
        result.tree.validate()  # raises on violation

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
    def test_excluded_plus_included_covers_candidates(self, builder_cls):
        result = builder_cls(COST).build(request(30, 15.0))
        assert len(result.tree) + len(result.excluded) == 30

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
    def test_empty_demand_nodes_are_not_candidates(self, builder_cls):
        req = request(4, 100.0)
        req.demands[2] = {}
        result = builder_cls(COST).build(req)
        assert 2 not in result.tree
        assert 2 not in result.excluded

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
    def test_highest_capacity_node_is_root(self, builder_cls):
        req = request(5, 50.0)
        req.capacities = {0: 50.0, 1: 50.0, 2: 80.0, 3: 50.0, 4: 50.0}
        result = builder_cls(COST).build(req)
        assert result.tree.root == 2

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
    def test_central_capacity_limits_tree(self, builder_cls):
        # Root message: C + a*n <= central => n <= central - C.
        result = builder_cls(COST).build(request(20, 1000.0, central=7.0))
        assert result.tree.central_used() <= 7.0 + 1e-9
        assert len(result.tree) <= 5


class TestShapes:
    def test_star_is_shallow(self):
        star = StarTreeBuilder(COST).build(request(10, 1000.0)).tree
        assert star.height() == 1

    def test_chain_is_deep(self):
        chain = ChainTreeBuilder(COST).build(request(10, 1000.0)).tree
        assert chain.height() == 9

    def test_star_shallower_than_chain_under_pressure(self):
        star = StarTreeBuilder(COST).build(request(30, 25.0)).tree
        chain = ChainTreeBuilder(COST).build(request(30, 25.0)).tree
        assert star.height() <= chain.height()

    def test_max_avb_prefers_spare_capacity(self):
        req = request(3, 100.0)
        req.capacities = {0: 100.0, 1: 90.0, 2: 50.0}
        tree = MaxAvailableTreeBuilder(COST).build(req).tree
        # Node 0 is root; node 1 has the most available capacity, so node
        # 2 (inserted last) attaches under whichever of {0, 1} has more
        # headroom after 1 joined -- that is node 1... unless the root
        # retains more. Just assert validity and full inclusion.
        assert len(tree) == 3
        tree.validate()


class TestAdaptiveBuilder:
    def test_adaptive_beats_or_matches_star_and_chain(self):
        req_args = dict(n=40, capacity=18.0)
        star = StarTreeBuilder(COST).build(request(**req_args)).tree
        chain = ChainTreeBuilder(COST).build(request(**req_args)).tree
        adaptive = AdaptiveTreeBuilder(COST).build(request(**req_args)).tree
        assert len(adaptive) >= max(len(star), len(chain))

    def test_adjusting_trades_overhead_for_relay(self):
        """With capacity just too small for a star, the adaptive builder
        must deepen the tree instead of giving up."""
        star = StarTreeBuilder(COST).build(request(12, 13.0)).tree
        adaptive = AdaptiveTreeBuilder(COST).build(request(12, 13.0)).tree
        assert len(adaptive) >= len(star)
        assert adaptive.height() >= star.height()

    def test_zero_adjust_rounds_is_construction_only(self):
        """Disabling adjusting keeps validity and cannot beat the full
        construct/adjust iteration."""
        plain = AdaptiveTreeBuilder(COST, max_adjust_rounds_per_node=0)
        full = AdaptiveTreeBuilder(COST)
        plain_tree = plain.build(request(25, 20.0)).tree
        full_tree = full.build(request(25, 20.0)).tree
        plain_tree.validate()
        assert len(plain_tree) <= len(full_tree)

    def test_rejects_negative_adjust_rounds(self):
        with pytest.raises(ValueError):
            AdaptiveTreeBuilder(COST, max_adjust_rounds_per_node=-1)

    def test_result_validates(self):
        result = AdaptiveTreeBuilder(COST).build(request(50, 16.0))
        result.tree.validate()


class TestBaseBuilder:
    def test_parent_preference_abstract(self):
        builder = GreedyTreeBuilder(COST)
        with pytest.raises(NotImplementedError):
            builder.parent_preference(None, 0)

    def test_insertion_order_by_capacity_then_id(self):
        builder = StarTreeBuilder(COST)
        req = request(4, 10.0)
        req.capacities = {0: 10.0, 1: 30.0, 2: 30.0, 3: 5.0}
        assert builder.insertion_order(req) == [1, 2, 0, 3]

    def test_multi_attribute_demands(self):
        req = TreeBuildRequest(
            attributes=frozenset({"a", "b"}),
            demands={0: {"a": 1.0, "b": 1.0}, 1: {"a": 1.0}, 2: {"b": 1.0}},
            capacities={i: 100.0 for i in range(3)},
        )
        result = StarTreeBuilder(COST).build(req)
        assert result.tree.pair_count() == 4
        result.tree.validate()
