"""Unit tests for MonitoringPlan metrics and structure."""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.core.plan import MonitoringPlan

COST = CostModel(2.0, 1.0)


def plan_for(cluster, pairs, partition=None):
    partition = partition or Partition.singletons({p.attribute for p in pairs})
    return ForestBuilder(COST).build(partition, pairs, cluster)


class TestObjectiveMetrics:
    def test_full_coverage(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs)
        assert plan.coverage() == pytest.approx(1.0)
        assert plan.collected_pair_count() == 12
        assert plan.requested_pair_count() == 12

    def test_partial_coverage_counts_uncollected(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b", "c", "d"])
        plan = plan_for(tight_cluster, pairs)
        assert plan.coverage() < 1.0
        uncollected = plan.uncollected_by_set()
        assert sum(uncollected.values()) == plan.requested_pair_count() - plan.collected_pair_count()
        assert all(v >= 0 for v in uncollected.values())

    def test_collected_pairs_subset_of_requested(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b"])
        plan = plan_for(tight_cluster, pairs)
        assert plan.collected_pairs() <= set(pairs)

    def test_total_message_cost_positive(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        assert plan.total_message_cost() > 0

    def test_max_tree_depth(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        assert plan.max_tree_depth() >= 0


class TestResourceAccounting:
    def test_node_usage_sums_across_trees(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs, Partition([{"a"}, {"b"}]))
        usage = plan.node_usage()
        for node, used in usage.items():
            per_tree = sum(
                result.tree.used(node)
                for result in plan.trees.values()
                if node in result.tree
            )
            assert used == pytest.approx(per_tree)

    def test_central_usage_is_sum_of_root_messages(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs, Partition([{"a"}, {"b"}]))
        expected = sum(r.tree.central_used() for r in plan.trees.values())
        assert plan.central_usage() == pytest.approx(expected)


class TestAssignments:
    def test_assignment_edges_match_tree_sizes(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs, Partition([{"a"}, {"b"}]))
        total_nodes = sum(len(r.tree) for r in plan.trees.values())
        assert len(plan.assignments()) == total_nodes

    def test_identical_plans_have_zero_adaptation_cost(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        p1 = plan_for(small_cluster, pairs)
        p2 = plan_for(small_cluster, pairs)
        assert p2.adaptation_cost_from(p1) == 0

    def test_partition_change_costs_edges(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        split = plan_for(small_cluster, pairs, Partition([{"a"}, {"b"}]))
        merged = plan_for(small_cluster, pairs, Partition([{"a", "b"}]))
        assert merged.adaptation_cost_from(split) > 0


class TestValidation:
    def test_validate_passes_for_feasible_plan(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b"])
        plan = plan_for(tight_cluster, pairs)
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )

    def test_validate_fails_on_shrunk_budget(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = plan_for(small_cluster, pairs)
        with pytest.raises(AssertionError):
            plan.validate({n.node_id: 0.01 for n in small_cluster}, 0.01)

    def test_plan_requires_tree_per_set(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = plan_for(small_cluster, pairs, Partition([{"a"}, {"b"}]))
        with pytest.raises(ValueError):
            MonitoringPlan(
                Partition([{"a"}, {"b"}]),
                {frozenset({"a"}): plan.trees[frozenset({"a"})]},
                pairs,
                COST,
            )

    def test_empty_pair_coverage_is_one(self, small_cluster):
        pairs = pairs_for(range(2), ["a"])
        plan = plan_for(small_cluster, pairs)
        trimmed = MonitoringPlan(plan.partition, plan.trees, [], COST)
        assert trimmed.coverage() == 1.0
