"""Telemetry overhead guard: tracing must cost <5% of planning time.

The :mod:`repro.obs` layer promises that instrumentation is cheap
enough to leave enabled in CI.  This bench holds it to that promise:
the 80-node CI workload is planned repeatedly with tracing disabled
and with a live tracer plus ambient registry installed, interleaved
best-of-N so machine noise hits both arms equally, and the relative
slowdown of the traced arm is asserted under ``LIMIT`` (5%).

Exit status 1 when the gate fails -- the CI perf-smoke job runs this
directly.  Results are persisted as ``BENCH_telemetry.json`` under
``benchmarks/results/`` (override with ``REPRO_BENCH_RESULTS``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict

from _common import emit, results_dir
from bench_planner_scaling import COST, _workload
from repro.analysis.report import format_table
from repro.core.planner import RemoPlanner
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, use_registry

#: Maximum tolerated relative slowdown of the traced arm.
LIMIT = 0.05

DEFAULT_NODES = 80
DEFAULT_ROUNDS = 5


def _time_plan(cluster, tasks) -> float:
    planner = RemoPlanner(COST)
    started = time.perf_counter()
    planner.plan(tasks, cluster)
    return time.perf_counter() - started


def measure(n_nodes: int, rounds: int) -> Dict[str, float]:
    """Best-of-``rounds`` for each arm, interleaved plain/traced."""
    cluster, tasks = _workload(n_nodes, n_nodes)
    # Warm-up: first plan pays one-time import and allocation costs.
    _time_plan(cluster, tasks)
    plain = float("inf")
    traced = float("inf")
    spans = 0
    for _ in range(rounds):
        plain = min(plain, _time_plan(cluster, tasks))
        with use_registry(MetricsRegistry()):
            with trace.installed() as tracer:
                traced = min(traced, _time_plan(cluster, tasks))
                spans = len(tracer)
    overhead = (traced - plain) / plain
    return {
        "nodes": float(n_nodes),
        "rounds": float(rounds),
        "plain_seconds": plain,
        "traced_seconds": traced,
        "overhead_fraction": overhead,
        "spans_recorded": float(spans),
    }


def persist(row: Dict[str, float]) -> str:
    payload = {"bench": "telemetry_overhead", "limit": LIMIT, "result": row}
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, "BENCH_telemetry.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def report(row: Dict[str, float]) -> None:
    emit(
        "telemetry_overhead",
        format_table(
            f"Telemetry overhead (limit {LIMIT:.0%})",
            ["metric", "value"],
            [
                ["nodes", int(row["nodes"])],
                ["plain seconds (best)", round(row["plain_seconds"], 4)],
                ["traced seconds (best)", round(row["traced_seconds"], 4)],
                ["overhead", f"{row['overhead_fraction']:.2%}"],
                ["spans recorded", int(row["spans_recorded"])],
            ],
        ),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nodes", type=int, default=DEFAULT_NODES, help="workload size"
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS, help="best-of rounds per arm"
    )
    args = parser.parse_args()
    row = measure(args.nodes, args.rounds)
    report(row)
    path = persist(row)
    print(f"wrote {path}")
    if row["overhead_fraction"] >= LIMIT:
        print(
            f"FAIL: telemetry overhead {row['overhead_fraction']:.2%} "
            f">= limit {LIMIT:.0%}"
        )
        return 1
    print(
        f"OK: telemetry overhead {row['overhead_fraction']:.2%} "
        f"< limit {LIMIT:.0%}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
