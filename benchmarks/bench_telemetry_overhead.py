"""Telemetry overhead guard: tracing must cost <5% of planning time.

The :mod:`repro.obs` layer promises that instrumentation is cheap
enough to leave enabled in CI.  This bench holds it to that promise:
the 80-node CI workload is planned repeatedly with tracing disabled
and with a live tracer plus ambient registry installed, and the
relative slowdown of the traced arm is asserted under ``LIMIT`` (5%).

A third arm holds structured logging (:mod:`repro.obs.log`) to the
same budget: it plans with the tracer live and additionally emits as
many flight-recorder events as the tracer recorded spans -- a log
volume matching the tracing volume -- and its overhead over the plain
arm must also stay under ``LIMIT``.

Arms are timed back-to-back within each round (order rotated per
round) and the gated overhead is the minimum per-round paired ratio:
a real regression inflates every round, one-sided machine noise does
not -- see :func:`measure`.

Exit status 1 when the gate fails -- the CI perf-smoke job runs this
directly.  Results are persisted as ``BENCH_telemetry.json`` under
``benchmarks/results/`` (override with ``REPRO_BENCH_RESULTS``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from typing import Dict

from _common import emit, results_dir
from bench_planner_scaling import COST, _workload
from repro.analysis.report import format_table
from repro.core.planner import RemoPlanner
from repro.obs import log, names, trace
from repro.obs.metrics import MetricsRegistry, use_registry

#: Maximum tolerated relative slowdown of the traced arm.
LIMIT = 0.05

DEFAULT_NODES = 80
DEFAULT_ROUNDS = 5


def _time_plan(cluster, tasks) -> float:
    planner = RemoPlanner(COST)
    # Collect before timing so garbage from the previous arm cannot
    # trigger a GC cycle inside this arm's timed region.
    gc.collect()
    started = time.perf_counter()
    planner.plan(tasks, cluster)
    return time.perf_counter() - started


def _time_plan_logged(cluster, tasks, emits: int) -> float:
    """One planning pass plus ``emits`` structured events, timed together."""
    planner = RemoPlanner(COST)
    gc.collect()
    started = time.perf_counter()
    planner.plan(tasks, cluster)
    for i in range(emits):
        log.emit(names.LOG_DEPLOY_WORKER_START, lane=names.LANE_DEPLOY, i=i)
    elapsed = time.perf_counter() - started
    log.clear()
    return elapsed


def measure(n_nodes: int, rounds: int) -> Dict[str, float]:
    """Paired per-round ratios, arm order rotated every round.

    Each round times all three arms back-to-back and computes that
    round's overhead ratios; the reported overhead is the *minimum*
    ratio across rounds.  A genuine instrumentation regression inflates
    the traced/logged arm in every round, so the minimum still catches
    it -- while one-sided machine noise (a GC pause, a noisy-neighbour
    stall, thermal drift hitting whichever arm runs last) cannot fail
    all rounds at once.  Rotating the arm order removes systematic
    position bias from drift within a round.
    """
    cluster, tasks = _workload(n_nodes, n_nodes)
    # Warm-up: first plan pays one-time import and allocation costs.
    _time_plan(cluster, tasks)
    plain = float("inf")
    traced = float("inf")
    logged = float("inf")
    overhead = float("inf")
    log_overhead = float("inf")
    spans = 0

    def _arm_plain():
        return _time_plan(cluster, tasks)

    def _arm_traced():
        nonlocal spans
        with use_registry(MetricsRegistry()):
            with trace.installed() as tracer:
                elapsed = _time_plan(cluster, tasks)
                spans = len(tracer)
        return elapsed

    def _arm_logged():
        with use_registry(MetricsRegistry()):
            with trace.installed():
                return _time_plan_logged(cluster, tasks, spans)

    arms = [("plain", _arm_plain), ("traced", _arm_traced), ("logged", _arm_logged)]
    for i in range(rounds):
        order = arms[i % 3 :] + arms[: i % 3]
        timings = {name: fn() for name, fn in order}
        plain = min(plain, timings["plain"])
        traced = min(traced, timings["traced"])
        logged = min(logged, timings["logged"])
        overhead = min(
            overhead, (timings["traced"] - timings["plain"]) / timings["plain"]
        )
        log_overhead = min(
            log_overhead, (timings["logged"] - timings["plain"]) / timings["plain"]
        )
    return {
        "nodes": float(n_nodes),
        "rounds": float(rounds),
        "plain_seconds": plain,
        "traced_seconds": traced,
        "logged_seconds": logged,
        "overhead_fraction": overhead,
        "log_overhead_fraction": log_overhead,
        "spans_recorded": float(spans),
        "events_emitted": float(spans),
    }


def persist(row: Dict[str, float]) -> str:
    payload = {"bench": "telemetry_overhead", "limit": LIMIT, "result": row}
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, "BENCH_telemetry.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def report(row: Dict[str, float]) -> None:
    emit(
        "telemetry_overhead",
        format_table(
            f"Telemetry overhead (limit {LIMIT:.0%})",
            ["metric", "value"],
            [
                ["nodes", int(row["nodes"])],
                ["plain seconds (best)", round(row["plain_seconds"], 4)],
                ["traced seconds (best)", round(row["traced_seconds"], 4)],
                ["logged seconds (best)", round(row["logged_seconds"], 4)],
                ["tracing overhead", f"{row['overhead_fraction']:.2%}"],
                ["logging overhead", f"{row['log_overhead_fraction']:.2%}"],
                ["spans recorded", int(row["spans_recorded"])],
                ["events emitted", int(row["events_emitted"])],
            ],
        ),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nodes", type=int, default=DEFAULT_NODES, help="workload size"
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS, help="best-of rounds per arm"
    )
    args = parser.parse_args()
    row = measure(args.nodes, args.rounds)
    report(row)
    path = persist(row)
    print(f"wrote {path}")
    failed = False
    for arm, key in (("tracing", "overhead_fraction"), ("logging", "log_overhead_fraction")):
        if row[key] >= LIMIT:
            print(f"FAIL: {arm} overhead {row[key]:.2%} >= limit {LIMIT:.0%}")
            failed = True
        else:
            print(f"OK: {arm} overhead {row[key]:.2%} < limit {LIMIT:.0%}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
