"""Wall-clock regression gate against the committed planner baseline.

CI runners are slower (and noisier) than the machine that produced
``benchmarks/results/BENCH_planner.json``, so absolute seconds cannot
be gated.  What *is* stable across machines is how planning time
scales with workload size: losing an optimization (incremental cost
propagation, memoized candidate evaluation, the SoA kernels) bends the
scaling curve long before it shows up in any single row.

The gate therefore compares a scaling ratio: from a fresh bench run at
two sizes (the CI perf-smoke job uses 80 and 400 nodes) it computes
``elapsed(high) / elapsed(low)`` and fails when that exceeds
``--factor`` (default 1.5) times the same ratio predicted by the
committed baseline.  Baseline rows rarely include the exact CI sizes,
so the expected seconds at each size are read off the baseline's
log-log curve (planning time is polynomial in N, which is a straight
line in log space).

Usage (what ``.github/workflows/ci.yml`` runs)::

    python benchmarks/bench_planner_scaling.py --sizes 80 400   # fresh run
    python benchmarks/check_planner_regression.py \
        --fresh benchmarks/results/BENCH_planner.json \
        --baseline <committed BENCH_planner.json> --low 80 --high 400
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict


def load_rows(path: str) -> Dict[int, float]:
    """``{nodes: elapsed_seconds}`` from a BENCH_planner.json payload."""
    with open(path) as fh:
        payload = json.load(fh)
    rows = {int(r["nodes"]): float(r["elapsed_seconds"]) for r in payload["results"]}
    if not rows:
        raise SystemExit(f"{path}: no bench rows")
    return rows


def interp_elapsed(rows: Dict[int, float], n: int) -> float:
    """Expected elapsed seconds at size ``n`` from the baseline curve.

    Exact rows are returned verbatim; other sizes are interpolated (or
    extrapolated from the nearest segment) linearly in log-log space.
    Rows timed below 1 ms are floored to keep the logs finite.
    """
    if n in rows:
        return rows[n]
    sizes = sorted(rows)
    if len(sizes) < 2:
        raise SystemExit("baseline needs >= 2 rows to interpolate a scaling curve")
    # Pick the segment bracketing n, else the nearest edge segment.
    lo = max((s for s in sizes if s <= n), default=sizes[0])
    hi = min((s for s in sizes if s > lo), default=sizes[-1])
    if lo == hi:
        lo = sizes[-2]
    x0, x1 = math.log(lo), math.log(hi)
    y0 = math.log(max(rows[lo], 1e-3))
    y1 = math.log(max(rows[hi], 1e-3))
    slope = (y1 - y0) / (x1 - x0)
    return math.exp(y0 + slope * (math.log(n) - x0))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="BENCH_planner.json from this run")
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/BENCH_planner.json",
        help="committed baseline payload",
    )
    parser.add_argument("--low", type=int, default=80, help="small workload size")
    parser.add_argument("--high", type=int, default=400, help="large workload size")
    parser.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="fail when the fresh scaling ratio exceeds factor x baseline ratio",
    )
    args = parser.parse_args()

    fresh = load_rows(args.fresh)
    for size in (args.low, args.high):
        if size not in fresh:
            raise SystemExit(f"fresh run {args.fresh} has no {size}-node row")
    base = load_rows(args.baseline)

    # Floor the denominators: sub-100ms rows are scheduler noise and
    # would make the ratio arbitrarily jittery.
    fresh_ratio = fresh[args.high] / max(fresh[args.low], 0.1)
    base_ratio = interp_elapsed(base, args.high) / max(
        interp_elapsed(base, args.low), 0.1
    )
    limit = args.factor * base_ratio
    verdict = "OK" if fresh_ratio <= limit else "REGRESSION"
    print(
        f"planner scaling {args.low}->{args.high} nodes: fresh ratio "
        f"{fresh_ratio:.2f}x vs baseline {base_ratio:.2f}x "
        f"(limit {limit:.2f}x): {verdict}"
    )
    if verdict != "OK":
        print(
            "planning time scales worse than the committed baseline allows; "
            "re-run benchmarks/bench_planner_scaling.py locally and look for "
            "a lost optimization before refreshing the baseline.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
