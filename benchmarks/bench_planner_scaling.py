"""Planner wall-clock scaling under incremental cost propagation.

The delta-based tree model (see DESIGN.md) exists to make planning
cheap at paper scale; this bench measures it directly.  For each
workload size N the planner runs the CLI-default regime (N nodes, N
tasks, capacity 400, C=20/a=1) and reports wall-clock time alongside
the search-effort counters from :class:`PlanningStats`.

Besides the human-readable table, results are persisted as
``BENCH_planner.json`` under ``benchmarks/results/`` (override with
``REPRO_BENCH_RESULTS``) using the same field names the CLI's
``repro plan --json`` emits in its ``planning`` block, so the two
sources can be joined.

Run standalone for custom sizes (the CI perf-smoke job does this)::

    PYTHONPATH=src python benchmarks/bench_planner_scaling.py --sizes 80
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Sequence

from _common import emit, results_dir
from repro.analysis.report import format_table
from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.obs import names
from repro.obs.metrics import default_registry
from repro.workloads.tasks import TaskSampler

COST = CostModel(per_message=20.0, per_value=1.0)
DEFAULT_SIZES = (50, 100, 200, 500, 1000)

#: Planner phases whose wall time the obs registry histograms record.
#: ``adjustment`` runs inside ``tree_construction``, so its seconds are
#: a subset of (not additive with) the construction phase.
_PHASES = ("partition", "tree_construction", "adjustment")


def _workload(n_nodes: int, n_tasks: int, seed: int = 1):
    """The CLI-default regime at size ``n_nodes`` x ``n_tasks``."""
    cluster = make_uniform_cluster(
        n_nodes=n_nodes,
        capacity=400.0,
        attrs_per_node=16,
        attribute_pool=default_attribute_pool(32),
        central_capacity=1200.0,
        seed=seed,
    )
    tasks = TaskSampler(cluster, seed=seed + 1).sample_many(
        n_tasks, (2, 5), (max(5, n_nodes // 6), max(6, n_nodes // 2))
    )
    return cluster, tasks


def _phase_seconds_snapshot() -> Dict[str, float]:
    registry = default_registry()
    return {
        phase: registry.histogram(names.PLANNER_PHASE_SECONDS, phase=phase).sum
        for phase in _PHASES
    }


def measure(n_nodes: int, n_tasks: int, parallelism: int = 1) -> Dict:
    cluster, tasks = _workload(n_nodes, n_tasks)
    planner = RemoPlanner(COST, parallelism=parallelism)
    before = _phase_seconds_snapshot()
    plan, stats = planner.plan_with_stats(tasks, cluster)
    after = _phase_seconds_snapshot()
    memo_total = stats.memo_hits + stats.memo_misses
    return {
        "nodes": n_nodes,
        "tasks": n_tasks,
        "elapsed_seconds": stats.elapsed_seconds,
        "iterations": stats.iterations,
        "candidates_ranked": stats.candidates_ranked,
        "candidates_evaluated": stats.candidates_evaluated,
        "accepted_ops": list(stats.accepted_ops),
        "coverage": plan.coverage(),
        # Committed alongside the timings so a perf change that silently
        # alters the default plan shows up as a fingerprint diff.
        "fingerprint": plan.fingerprint(),
        "collected_pairs": plan.collected_pair_count(),
        "trees": plan.tree_count(),
        "traffic_per_period": plan.total_message_cost(),
        "phase_seconds": {p: after[p] - before[p] for p in _PHASES},
        "memo": {
            "hits": stats.memo_hits,
            "misses": stats.memo_misses,
            "hit_rate": stats.memo_hits / memo_total if memo_total else 0.0,
        },
    }


def run_scaling(sizes: Sequence[int], parallelism: int = 1) -> List[Dict]:
    return [measure(n, n, parallelism=parallelism) for n in sizes]


def persist(rows: List[Dict], parallelism: int) -> str:
    payload = {
        "bench": "planner_scaling",
        "parallelism": parallelism,
        "results": rows,
    }
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, "BENCH_planner.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def report(rows: List[Dict]) -> None:
    emit(
        "planner_scaling",
        format_table(
            "Planner scaling (CLI-default regime, tasks = nodes)",
            ["nodes", "seconds", "tree_s", "adjust_s", "memo_rate", "evaluated", "accepted", "coverage"],
            [
                [
                    row["nodes"],
                    round(row["elapsed_seconds"], 2),
                    round(row["phase_seconds"]["tree_construction"], 2),
                    round(row["phase_seconds"]["adjustment"], 2),
                    round(row["memo"]["hit_rate"], 3),
                    row["candidates_evaluated"],
                    len(row["accepted_ops"]),
                    round(row["coverage"], 4),
                ]
                for row in rows
            ],
        ),
    )


def _env_sizes() -> Sequence[int]:
    raw = os.environ.get("REPRO_BENCH_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(tok) for tok in raw.replace(",", " ").split())


def test_planner_scaling(benchmark):
    sizes = _env_sizes()
    rows = benchmark.pedantic(run_scaling, args=(sizes,), rounds=1, iterations=1)
    report(rows)
    persist(rows, parallelism=1)
    for row in rows:
        assert row["coverage"] > 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="workload sizes (nodes; tasks = nodes)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="planner worker processes (results are serial-identical)",
    )
    args = parser.parse_args()
    rows = run_scaling(args.sizes, parallelism=args.parallelism)
    report(rows)
    path = persist(rows, args.parallelism)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
