"""Shared machinery for the figure-reproduction benchmarks.

Every bench prints the same rows/series the paper's figure plots and
additionally persists them under ``benchmarks/results/`` so that
EXPERIMENTS.md can quote them.  pytest captures stdout, so tables are
written through ``sys.__stdout__`` to stay visible in
``pytest benchmarks/ --benchmark-only`` runs.

The default experiment regime is calibrated so that the paper's
qualitative relationships reproduce (see DESIGN.md): per-message
overhead dominates (``C/a = 30``), node capacity allows trees of a few
dozen values, and the central collector is provisioned at roughly one
node's capacity -- making both node-level overhead (hurts
SINGLETON-SET) and single-tree relay concentration (hurts ONE-SET)
binding in their respective regimes.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.report import Series, format_table
from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner

#: Default location for persisted result tables; override with the
#: ``REPRO_BENCH_RESULTS`` environment variable (read at emit time, so
#: CI can point each run at its own scratch directory).
DEFAULT_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def results_dir() -> str:
    """The directory result tables are persisted to."""
    return os.environ.get("REPRO_BENCH_RESULTS") or DEFAULT_RESULTS_DIR

#: Calibrated default regime (see module docstring).
DEFAULT_N_NODES = 100
DEFAULT_CAPACITY = 800.0
DEFAULT_CENTRAL = 900.0
DEFAULT_POOL = 40
DEFAULT_ATTRS_PER_NODE = 20
DEFAULT_COST = CostModel(per_message=30.0, per_value=1.0)

#: Search effort used by benches (smaller than library defaults to keep
#: total bench runtime reasonable; quality loss is minor).
BENCH_BUDGET = 6
BENCH_ITERS = 24


_OPENED = set()


def emit(name: str, text: str) -> None:
    """Print a result table past pytest's capture and persist it.

    The first emit for a given name in a process truncates the result
    file, so stale series from earlier runs never linger.
    """
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, f"{name}.txt")
    mode = "a" if name in _OPENED else "w"
    _OPENED.add(name)
    with open(path, mode) as fh:
        fh.write(text + "\n\n")


def emit_series(name: str, title: str, x_label: str, xs: Sequence, series: Sequence[Series]) -> None:
    columns = [x_label] + [s.name for s in series]
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for s in series:
            row.append(s.values[i] if i < len(s.values) else float("nan"))
        rows.append(row)
    emit(name, format_table(title, columns, rows))


def standard_cluster(
    n_nodes: int = DEFAULT_N_NODES,
    capacity: float = DEFAULT_CAPACITY,
    central: float = DEFAULT_CENTRAL,
    pool_size: int = DEFAULT_POOL,
    attrs_per_node: int = DEFAULT_ATTRS_PER_NODE,
    seed: int = 1,
):
    return make_uniform_cluster(
        n_nodes=n_nodes,
        capacity=capacity,
        attrs_per_node=attrs_per_node,
        attribute_pool=default_attribute_pool(pool_size),
        central_capacity=central,
        seed=seed,
    )


def make_planners(cost: CostModel = DEFAULT_COST, **remo_kwargs):
    """The three Fig. 5/6/8 comparands, keyed by their paper names."""
    remo_kwargs.setdefault("candidate_budget", BENCH_BUDGET)
    remo_kwargs.setdefault("max_iterations", BENCH_ITERS)
    return {
        "REMO": RemoPlanner(cost, **remo_kwargs),
        "SINGLETON-SET": SingletonSetPlanner(cost),
        "ONE-SET": OneSetPlanner(cost),
    }
