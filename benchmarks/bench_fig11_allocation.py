"""Fig. 11 -- tree-wise capacity allocation schemes.

Compares how a node's capacity is divided among the trees it serves:

- UNIFORM: equal slice per tree;
- PROPORTIONAL: slice proportional to the node's contribution per tree;
- ON-DEMAND: build trees sequentially, each taking what is left;
- ORDERED: on-demand with smallest-trees-first construction.

Expected shape (paper): ON-DEMAND and ORDERED consistently beat the
pre-divided schemes, with ORDERED's advantage growing with nodes and
tasks (mixed tree sizes make construction order matter).
"""

import pytest

from _common import BENCH_BUDGET, BENCH_ITERS, emit_series, standard_cluster
from repro.analysis.report import Series
from repro.core.allocation import AllocationPolicy
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.workloads.tasks import TaskSampler

COST = CostModel(per_message=20.0, per_value=1.0)
POLICIES = {
    "ORDERED": AllocationPolicy.ORDERED,
    "ON-DEMAND": AllocationPolicy.ON_DEMAND,
    "UNIFORM": AllocationPolicy.UNIFORM,
    "PROPORTIONAL": AllocationPolicy.PROPORTIONAL,
}


def coverage_for(policy, tasks, cluster):
    planner = RemoPlanner(
        COST,
        allocation=policy,
        candidate_budget=BENCH_BUDGET,
        max_iterations=BENCH_ITERS,
    )
    return planner.plan(tasks, cluster).coverage()


def to_series(points):
    series = [Series(n) for n in POLICIES]
    for point in points:
        for s in series:
            s.add(round(point[s.name], 4))
    return series


def test_fig11a_vs_nodes(benchmark):
    xs = [40, 80, 120]

    def run():
        points = []
        for n in xs:
            cluster = standard_cluster(n_nodes=n)
            # Mixed task sizes so trees differ widely in volume --
            # exactly the regime where construction order matters.
            sampler = TaskSampler(cluster, seed=81)
            tasks = sampler.sample_many(8, (1, 3), (5, 15), prefix=f"sm{n}-")
            tasks += sampler.sample_many(8, (5, 10), (n // 2, int(0.9 * n)), prefix=f"lg{n}-")
            points.append(
                {name: coverage_for(policy, tasks, cluster) for name, policy in POLICIES.items()}
            )
        return to_series(points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig11", "Fig 11a: % collected vs nodes", "nodes", xs, result)
    by_name = {s.name: s.values for s in result}
    for i in range(len(xs)):
        best_sequential = max(by_name["ORDERED"][i], by_name["ON-DEMAND"][i])
        worst_predivided = min(by_name["UNIFORM"][i], by_name["PROPORTIONAL"][i])
        assert best_sequential >= worst_predivided - 1e-9
    assert sum(by_name["ORDERED"]) >= sum(by_name["ON-DEMAND"]) - 0.05


def test_fig11b_vs_tasks(benchmark):
    xs = [8, 16, 32]
    cluster = standard_cluster(n_nodes=80)

    def run():
        points = []
        for count in xs:
            sampler = TaskSampler(cluster, seed=83)
            tasks = sampler.sample_many(count // 2, (1, 3), (5, 15), prefix=f"s{count}-")
            tasks += sampler.sample_many(
                count - count // 2, (5, 10), (40, 70), prefix=f"l{count}-"
            )
            points.append(
                {name: coverage_for(policy, tasks, cluster) for name, policy in POLICIES.items()}
            )
        return to_series(points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig11", "Fig 11b: % collected vs tasks", "tasks", xs, result)
    by_name = {s.name: s.values for s in result}
    mean = lambda vs: sum(vs) / len(vs)  # noqa: E731
    assert mean(by_name["ORDERED"]) >= mean(by_name["UNIFORM"]) - 1e-9
    assert mean(by_name["ORDERED"]) >= mean(by_name["PROPORTIONAL"]) - 1e-9
