"""Fig. 12 -- extension techniques.

- 12a: planning awareness of In-network aggregation (MAX applied to all
  tasks) and of heterogeneous update frequencies (half the tasks at
  half frequency), alone and combined, versus the oblivious basic
  planner.  Values are collected pairs normalized by basic REMO
  (paper: combined awareness gains close to +50%).
- 12b: reliability with replication factor 2: REMO's SSDP task
  rewriting (REMO-2) versus duplicating the SINGLETON-SET forest
  (SINGLETON-SET-2) and duplicating the ONE-SET tree (ONE-SET-2),
  under an increasing number of tasks.
"""

import pytest

from _common import BENCH_BUDGET, BENCH_ITERS, emit, emit_series, standard_cluster
from repro.analysis.report import Series, format_table
from repro.core.cost import AggregationKind, CostModel
from repro.core.planner import RemoPlanner
from repro.core.tasks import MonitoringTask
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.ext.aggregation import uniform_aggregation
from repro.ext.frequencies import frequency_weights
from repro.ext.reliability import alias_cluster, replica_plan_coverage, rewrite_ssdp
from repro.workloads.tasks import TaskSampler

COST = CostModel(per_message=20.0, per_value=1.0)


def remo(aggregation=None, forbidden=None):
    return RemoPlanner(
        COST,
        aggregation=aggregation,
        forbidden_pairs=forbidden,
        candidate_budget=BENCH_BUDGET,
        max_iterations=BENCH_ITERS,
    )


def test_fig12a_awareness(benchmark):
    cluster = standard_cluster(n_nodes=80, capacity=500.0, central=700.0)
    sampler = TaskSampler(cluster, seed=91)
    tasks = sampler.sample_many(20, (2, 5), (20, 60), prefix="x-", frequency=1.0)
    # Half the tasks update at half frequency (Section 7.1 "Extension").
    slowed = [
        task
        if i % 2 == 0
        else MonitoringTask(task.task_id, task.attributes, task.nodes, frequency=0.5)
        for i, task in enumerate(tasks)
    ]
    attrs = sorted({a for t in tasks for a in t.attributes})
    max_agg = uniform_aggregation(attrs, AggregationKind.MAX)
    freq_inputs = frequency_weights(slowed)

    def run():
        base = remo().plan(slowed, cluster).collected_pair_count()
        agg_aware = remo(aggregation=max_agg).plan(slowed, cluster).collected_pair_count()
        freq_aware = (
            remo()
            .plan(
                slowed,
                cluster,
                pair_weights=freq_inputs.pair_weights,
                msg_weights=freq_inputs.msg_weights,
            )
            .collected_pair_count()
        )
        both = (
            remo(aggregation=max_agg)
            .plan(
                slowed,
                cluster,
                pair_weights=freq_inputs.pair_weights,
                msg_weights=freq_inputs.msg_weights,
            )
            .collected_pair_count()
        )
        return base, agg_aware, freq_aware, both

    base, agg_aware, freq_aware, both = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["basic REMO", 1.0],
        ["aggregation-aware", round(agg_aware / base, 4)],
        ["frequency-aware", round(freq_aware / base, 4)],
        ["both", round(both / base, 4)],
    ]
    emit(
        "fig12",
        format_table(
            "Fig 12a: collected values normalized to basic REMO",
            ["variant", "normalized"],
            rows,
        ),
    )
    assert agg_aware >= base
    assert freq_aware >= base
    assert both >= max(agg_aware, freq_aware) * 0.98


def test_fig12b_replication(benchmark):
    xs = [6, 12, 24]
    base_cluster = standard_cluster(n_nodes=60, capacity=600.0, central=1000.0)

    def run():
        points = []
        for count in xs:
            sampler = TaskSampler(base_cluster, seed=93)
            tasks = sampler.sample_many(count, (2, 4), (15, 45), prefix=f"r{count}-")
            rewrite = rewrite_ssdp(tasks, factor=2)
            cluster2 = alias_cluster(base_cluster, rewrite)
            # REMO-2: SSDP rewriting + alias separation constraint.
            remo_plan = remo(forbidden=rewrite.forbidden_pairs).plan(
                rewrite.tasks, cluster2
            )
            # Baselines replicate naively: the rewritten workload planned
            # by the fixed-partition schemes (every alias gets its own
            # tree under SP; OP cannot separate aliases, so its single
            # tree carries both copies).
            sp_plan = SingletonSetPlanner(COST).plan(rewrite.tasks, cluster2)
            op_plan = OneSetPlanner(COST).plan(rewrite.tasks, cluster2)
            points.append(
                {
                    "REMO-2": round(replica_plan_coverage(remo_plan, rewrite), 4),
                    "SINGLETON-SET-2": round(replica_plan_coverage(sp_plan, rewrite), 4),
                    "ONE-SET-2": round(replica_plan_coverage(op_plan, rewrite), 4),
                }
            )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    names = ["REMO-2", "SINGLETON-SET-2", "ONE-SET-2"]
    series = [Series(n, [p[n] for p in points]) for n in names]
    emit_series(
        "fig12",
        "Fig 12b: replicated (factor 2) base-pair coverage vs tasks",
        "tasks",
        xs,
        series,
    )
    remo_vals, sp_vals, op_vals = (s.values for s in series)
    assert all(r >= s - 1e-9 for r, s in zip(remo_vals, sp_vals))
    assert all(r >= o - 1e-9 for r, o in zip(remo_vals, op_vals))
