"""Fig. 5 -- partition schemes under varying workload characteristics.

Four sub-figures, all plotting the percentage of collected
node-attribute values for REMO vs SINGLETON-SET vs ONE-SET:

- 5a: increasing attributes per task ``|A_t|``;
- 5b: increasing nodes per task ``|N_t|`` under a large ``|A_t|``
  (REMO converges towards SINGLETON-SET under extreme load);
- 5c: increasing number of small-scale tasks;
- 5d: increasing number of large-scale tasks.

Expected shape (paper): REMO on top everywhere; ONE-SET competitive
only at small scales; SINGLETON-SET degrades least under extreme load.
Also includes the guided-search ablation called out in DESIGN.md
(candidate_budget=None evaluates the whole neighborhood).
"""

import pytest

from _common import (
    BENCH_BUDGET,
    BENCH_ITERS,
    DEFAULT_COST,
    emit_series,
    make_planners,
    standard_cluster,
)
from repro.analysis.report import Series, format_table
from repro.core.planner import RemoPlanner
from repro.workloads.tasks import TaskSampler
from _common import emit

N_NODES = 80


def sweep(xs, make_tasks, cluster, planners):
    series = {name: Series(name) for name in planners}
    for x in xs:
        tasks = make_tasks(x)
        for name, planner in planners.items():
            plan = planner.plan(tasks, cluster)
            series[name].add(round(plan.coverage(), 4))
    return [series["REMO"], series["SINGLETON-SET"], series["ONE-SET"]]


@pytest.fixture(scope="module")
def cluster():
    return standard_cluster(n_nodes=N_NODES)


def test_fig5a_attributes_per_task(cluster, benchmark):
    xs = [1, 2, 4, 8]
    sampler = TaskSampler(cluster, seed=9)
    make_tasks = lambda at: sampler.sample_many(  # noqa: E731
        20, (at, at), (30, 60), prefix=f"a{at}-"
    )
    planners = make_planners()
    result = benchmark.pedantic(
        lambda: sweep(xs, make_tasks, cluster, planners), rounds=1, iterations=1
    )
    emit_series("fig05", "Fig 5a: % collected vs attributes per task", "|At|", xs, result)
    remo, sp, op = result
    # REMO dominates both baselines at every point.
    assert all(r >= s - 1e-9 for r, s in zip(remo.values, sp.values))
    assert all(r >= o - 1e-9 for r, o in zip(remo.values, op.values))


def test_fig5b_nodes_per_task_heavy(cluster, benchmark):
    xs = [20, 40, 80]
    sampler = TaskSampler(cluster, seed=11)
    make_tasks = lambda nt: sampler.sample_many(  # noqa: E731
        12, (10, 16), (nt, nt), prefix=f"n{nt}-"
    )
    planners = make_planners()
    result = benchmark.pedantic(
        lambda: sweep(xs, make_tasks, cluster, planners), rounds=1, iterations=1
    )
    emit_series(
        "fig05", "Fig 5b: % collected vs nodes per task (heavy |At|)", "|Nt|", xs, result
    )
    remo, sp, op = result
    assert all(r >= s - 1e-9 for r, s in zip(remo.values, sp.values))
    # Under extreme load REMO converges towards SINGLETON-SET: the gap
    # at the heaviest point is smaller than ONE-SET's deficit.
    assert remo.values[-1] - sp.values[-1] <= remo.values[-1] - op.values[-1]


def test_fig5c_small_task_count(cluster, benchmark):
    xs = [10, 20, 40]
    sampler = TaskSampler(cluster, seed=13)
    make_tasks = lambda count: sampler.sample_many(  # noqa: E731
        count, (1, 4), (5, 20), prefix=f"s{count}-"
    )
    planners = make_planners()
    result = benchmark.pedantic(
        lambda: sweep(xs, make_tasks, cluster, planners), rounds=1, iterations=1
    )
    emit_series(
        "fig05", "Fig 5c: % collected vs number of small-scale tasks", "tasks", xs, result
    )
    remo, sp, op = result
    assert all(r >= max(s, o) - 1e-9 for r, s, o in zip(remo.values, sp.values, op.values))


def test_fig5d_large_task_count(cluster, benchmark):
    xs = [5, 10, 20]
    sampler = TaskSampler(cluster, seed=15)
    make_tasks = lambda count: sampler.sample_many(  # noqa: E731
        count, (6, 12), (40, 70), prefix=f"l{count}-"
    )
    planners = make_planners()
    result = benchmark.pedantic(
        lambda: sweep(xs, make_tasks, cluster, planners), rounds=1, iterations=1
    )
    emit_series(
        "fig05", "Fig 5d: % collected vs number of large-scale tasks", "tasks", xs, result
    )
    remo, sp, op = result
    assert all(r >= s - 1e-9 for r, s in zip(remo.values, sp.values))


def test_fig5_ablation_guided_vs_exhaustive(cluster, benchmark):
    """DESIGN.md ablation: the guided candidate budget should retain
    most of the exhaustive search's quality at a fraction of the
    evaluations."""
    sampler = TaskSampler(cluster, seed=17)
    tasks = sampler.sample_many(16, (2, 4), (20, 50), prefix="ab-")

    def run(budget):
        planner = RemoPlanner(
            DEFAULT_COST, candidate_budget=budget, max_iterations=BENCH_ITERS
        )
        plan, stats = planner.plan_with_stats(tasks, cluster)
        return plan.coverage(), stats.candidates_evaluated

    guided_cov, guided_evals = benchmark.pedantic(
        lambda: run(BENCH_BUDGET), rounds=1, iterations=1
    )
    exhaustive_cov, exhaustive_evals = run(None)
    emit(
        "fig05",
        format_table(
            "Ablation: guided vs exhaustive candidate evaluation",
            ["variant", "coverage", "evaluations"],
            [
                ["guided(6)", round(guided_cov, 4), guided_evals],
                ["exhaustive", round(exhaustive_cov, 4), exhaustive_evals],
            ],
        ),
    )
    assert guided_evals <= exhaustive_evals
    assert guided_cov >= exhaustive_cov * 0.9
