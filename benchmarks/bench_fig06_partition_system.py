"""Fig. 6 -- partition schemes under varying system characteristics.

Four sub-figures plotting percentage of collected values:

- 6a: increasing cluster size, small-scale tasks;
- 6b: increasing cluster size, large-scale tasks;
- 6c: increasing per-message overhead ratio ``C/a``, small tasks;
- 6d: increasing ``C/a``, large tasks.

Expected shape (paper): REMO dominates both baselines across system
sizes (up to ~90% extra pairs); growing ``C/a`` hits SINGLETON-SET
hardest (it sends the most messages) while ONE-SET degrades most
gracefully, with REMO shrinking its tree count as ``C/a`` rises.
"""

import pytest

from _common import DEFAULT_COST, emit_series, make_planners, standard_cluster
from repro.analysis.report import Series
from repro.core.cost import CostModel
from repro.workloads.tasks import TaskSampler


def run_point(planners, tasks, cluster):
    return {
        name: round(planner.plan(tasks, cluster).coverage(), 4)
        for name, planner in planners.items()
    }


def series_from(points, names):
    series = [Series(n) for n in names]
    for point in points:
        for s in series:
            s.add(point[s.name])
    return series


NAMES = ["REMO", "SINGLETON-SET", "ONE-SET"]


def test_fig6a_nodes_small_tasks(benchmark):
    xs = [40, 80, 120]

    def run():
        points = []
        for n in xs:
            cluster = standard_cluster(n_nodes=n)
            tasks = TaskSampler(cluster, seed=21).sample_many(
                20, (1, 4), (max(5, n // 8), n // 2), prefix=f"n{n}-"
            )
            points.append(run_point(make_planners(), tasks, cluster))
        return series_from(points, NAMES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig06", "Fig 6a: % collected vs nodes (small tasks)", "nodes", xs, result)
    remo, sp, op = result
    assert all(r >= max(s, o) - 1e-9 for r, s, o in zip(remo.values, sp.values, op.values))


def test_fig6b_nodes_large_tasks(benchmark):
    xs = [40, 80, 120]

    def run():
        points = []
        for n in xs:
            cluster = standard_cluster(n_nodes=n)
            tasks = TaskSampler(cluster, seed=23).sample_many(
                10, (6, 12), (n // 2, int(n * 0.9)), prefix=f"N{n}-"
            )
            points.append(run_point(make_planners(), tasks, cluster))
        return series_from(points, NAMES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig06", "Fig 6b: % collected vs nodes (large tasks)", "nodes", xs, result)
    remo, sp, op = result
    assert all(r >= s - 1e-9 for r, s in zip(remo.values, sp.values))
    # Large-scale tasks: SINGLETON-SET beats ONE-SET (the paper's claim).
    assert sum(sp.values) >= sum(op.values)


@pytest.mark.parametrize(
    "label,attr_range,node_frac",
    [("small", (1, 4), (0.1, 0.4)), ("large", (6, 12), (0.5, 0.9))],
)
def test_fig6cd_overhead_ratio(benchmark, label, attr_range, node_frac):
    ratios = [2.0, 10.0, 30.0, 60.0]
    cluster = standard_cluster(n_nodes=80)
    lo = max(2, int(node_frac[0] * 80))
    hi = int(node_frac[1] * 80)
    tasks = TaskSampler(cluster, seed=25).sample_many(
        14, attr_range, (lo, hi), prefix=f"{label}-"
    )

    def run():
        points = []
        for ratio in ratios:
            cost = CostModel(per_message=ratio, per_value=1.0)
            points.append(run_point(make_planners(cost), tasks, cluster))
        return series_from(points, NAMES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series(
        "fig06",
        f"Fig 6{'c' if label == 'small' else 'd'}: % collected vs C/a ({label} tasks)",
        "C/a",
        ratios,
        result,
    )
    remo, sp, op = result
    assert all(r >= max(s, o) - 1e-9 for r, s, o in zip(remo.values, sp.values, op.values))
    # Growing C/a hurts SINGLETON-SET more than ONE-SET, relatively:
    # SP's retained fraction from cheapest to priciest C/a is smaller.
    if sp.values[0] > 0 and op.values[0] > 0:
        assert sp.values[-1] / sp.values[0] <= op.values[-1] / op.values[0] + 0.05
