"""Fig. 2 -- CPU usage versus message number / message size.

The paper measured, on a BlueGene/P node, that a star-collection root
receiving one small message from each of 16..256 senders burns ~6%..68%
of a core (linear in the *number* of messages), while growing a single
message from 1 to 256 values only raises its cost from 0.2% to 1.4%.

We regenerate both series from the ``C + a*x`` model (the model was
fitted to exactly this measurement) and validate them against the
discrete-event simulator running an actual star collection.  Cost
units are mapped to a nominal CPU% scale anchored at the paper's
256-senders = 68% point.
"""

import pytest

from _common import emit
from repro.analysis.report import format_table
from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.simulation import MonitoringSimulation, SimulationConfig

#: C/a fitted to the paper's two anchor measurements:
#: 256 messages of 1 value = 68% CPU; 1 message of 256 values ~ 1.4%.
COST = CostModel(per_message=30.0, per_value=1.0)
SENDERS = [16, 32, 64, 128, 256]
VALUES = [1, 16, 64, 128, 256]

#: CPU% per cost unit, anchored at 256 * (C + a) = 68%.
CPU_SCALE = 68.0 / (256 * COST.message_cost(1))


def star_root_cpu(n_senders: int) -> float:
    return COST.star_root_cost(n_senders) * CPU_SCALE


def single_message_cpu(n_values: int) -> float:
    return COST.message_cost(n_values) * CPU_SCALE


@pytest.fixture(scope="module")
def fig2_tables():
    rows_a = [[n, round(star_root_cpu(n), 2)] for n in SENDERS]
    rows_b = [[v, round(single_message_cpu(v), 3)] for v in VALUES]
    emit(
        "fig02",
        format_table(
            "Fig 2 (left): root CPU% vs number of senders (1 value each)",
            ["senders", "root_cpu_pct"],
            rows_a,
        ),
    )
    emit(
        "fig02",
        format_table(
            "Fig 2 (right): cost of receiving ONE message vs values carried",
            ["values", "recv_cpu_pct"],
            rows_b,
        ),
    )
    return rows_a, rows_b


def _run_star_simulation(n_senders: int) -> float:
    """Star collection in the simulator; returns root+central cost/period."""
    nodes = [SimNode(i, capacity=1e9, attributes=frozenset({"m"})) for i in range(n_senders)]
    cluster = Cluster(nodes, central_capacity=1e9)
    pairs = pairs_for(range(n_senders), ["m"])
    builder = ForestBuilder(COST)
    plan = builder.build(Partition.one_set(["m"]), pairs, cluster)
    stats = MonitoringSimulation(
        plan, cluster, config=SimulationConfig(seed=1)
    ).run(3)
    return stats.cost_units_spent / 3


def test_fig2_linear_in_message_count(fig2_tables, benchmark):
    rows_a, _ = fig2_tables
    benchmark.pedantic(lambda: _run_star_simulation(64), rounds=2, iterations=1)
    # Linearity: doubling senders doubles CPU.
    cpus = {n: cpu for n, cpu in rows_a}
    assert cpus[256] == pytest.approx(2 * cpus[128], rel=0.01)
    assert cpus[256] == pytest.approx(68.0, rel=0.05)
    # Paper anchor: 16 senders around 6% (we allow the model's 4-8%).
    assert 3.0 < cpus[16] < 9.0


def test_fig2_payload_growth_is_mild(fig2_tables, benchmark):
    _, rows_b = fig2_tables
    benchmark.pedantic(lambda: single_message_cpu(256), rounds=5, iterations=100)
    costs = {v: cpu for v, cpu in rows_b}
    # Growing one message 1 -> 256 values costs far less than sending
    # 256 separate messages.
    assert costs[256] < star_root_cpu(256) / 10
    # And the growth is visible but mild (paper: 0.2% -> 1.4%).
    assert costs[256] > costs[1]
    assert costs[256] / costs[1] < 10


def test_fig2_simulator_matches_model(benchmark):
    measured = benchmark.pedantic(
        lambda: _run_star_simulation(32), rounds=2, iterations=1
    )
    # Analytic: with unbounded capacity the builder forms a pure star,
    # so 31 leaves each send one 1-value message (paid by sender and by
    # the root's receive side), and the root forwards one merged
    # 32-value message to the collector (paid on both endpoints).
    expected = (
        31 * COST.message_cost(1) * 2
        + COST.message_cost(32) * 2
    )
    assert measured == pytest.approx(expected, rel=0.05)
