"""Control-plane task-churn load bench: submit/delete ops/sec at p99.

Boots a real :class:`~repro.serve.server.ControlPlaneServer` on an
ephemeral port (its own asyncio loop in a background thread) and
drives it over HTTP with the synchronous
:class:`~repro.serve.client.ControlPlaneClient`: N task submissions
spread across several tenants, one adaptation, N deletions, and a
final adaptation.  Every operation's wall-clock latency is recorded
individually, so the table reports throughput *and* tail latency --
the number that matters for a control plane is the p99, not the mean.

Results are persisted as ``BENCH_controlplane.json`` under
``benchmarks/results/`` (override with ``REPRO_BENCH_RESULTS``), one
row per op kind: ``{op, count, ops_per_sec, p50_ms, p99_ms}``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_controlplane_churn.py
    PYTHONPATH=src python benchmarks/bench_controlplane_churn.py --ops 500
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from _common import emit, results_dir
from repro.analysis.report import format_table
from repro.serve import ControlPlane, ControlPlaneClient, ControlPlaneServer
from repro.workloads.presets import quickstart_workload

DEFAULT_OPS = 200
DEFAULT_TENANTS = 4
DEFAULT_COLLECTORS = 2
#: Attributes / nodes per generated task (small: churn, not planning,
#: is what this bench loads).
TASK_ATTRS = 3
TASK_NODES = 6


class ServerThread:
    """A control-plane server on its own event loop, in a thread."""

    def __init__(self, controlplane: ControlPlane) -> None:
        self._controlplane = controlplane
        self._server: Optional[ControlPlaneServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = ControlPlaneServer(self._controlplane, port=0)
        await self._server.start()
        self._ready.set()
        await self._stop.wait()
        await self._server.stop()

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("control-plane server failed to start")
        assert self._server is not None
        return self._server.port

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


def _make_tasks(count: int, cluster, seed: int = 7) -> List[Dict[str, Any]]:
    """Deterministic task bodies over the cluster's observable pairs."""
    rng = random.Random(seed)
    nodes = sorted(node.node_id for node in cluster)
    by_node = {node.node_id: sorted(node.attributes) for node in cluster}
    tasks = []
    for index in range(count):
        chosen = rng.sample(nodes, min(TASK_NODES, len(nodes)))
        pool = sorted({attr for node in chosen for attr in by_node[node]})
        attrs = rng.sample(pool, min(TASK_ATTRS, len(pool)))
        tasks.append({"task_id": f"task-{index}", "attributes": attrs, "nodes": chosen})
    return tasks


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _row(op: str, latencies: List[float]) -> Dict[str, Any]:
    ordered = sorted(latencies)
    total = sum(ordered)
    return {
        "op": op,
        "count": len(ordered),
        "ops_per_sec": len(ordered) / total if total > 0 else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
    }


def measure(
    ops: int, tenants: int = DEFAULT_TENANTS, collectors: int = DEFAULT_COLLECTORS
) -> List[Dict[str, Any]]:
    """Drive one churn cycle; one result row per op kind."""
    cluster, cost, _tasks = quickstart_workload()
    controlplane = ControlPlane(cluster, cost, collectors=collectors)
    server = ServerThread(controlplane)
    port = server.start()
    bodies = _make_tasks(ops, cluster)
    submit: List[float] = []
    delete: List[float] = []
    adapt: List[float] = []
    try:
        with ControlPlaneClient("127.0.0.1", port) as client:
            for index, body in enumerate(bodies):
                tenant = f"tenant-{index % tenants}"
                started = time.perf_counter()
                client.submit_task(
                    tenant, body["task_id"], body["attributes"], body["nodes"]
                )
                submit.append(time.perf_counter() - started)
            started = time.perf_counter()
            client.adapt()
            adapt.append(time.perf_counter() - started)
            for index, body in enumerate(bodies):
                tenant = f"tenant-{index % tenants}"
                started = time.perf_counter()
                client.delete_task(tenant, body["task_id"])
                delete.append(time.perf_counter() - started)
            started = time.perf_counter()
            client.adapt()
            adapt.append(time.perf_counter() - started)
    finally:
        server.stop()
    return [_row("submit", submit), _row("delete", delete), _row("adapt", adapt)]


def persist(rows: List[Dict[str, Any]], tenants: int, collectors: int) -> str:
    payload = {
        "bench": "controlplane_churn",
        "tenants": tenants,
        "collectors": collectors,
        "rows": rows,
    }
    target = results_dir()
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, "BENCH_controlplane.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def report(rows: List[Dict[str, Any]], tenants: int, collectors: int) -> None:
    emit(
        "controlplane_churn",
        format_table(
            f"Control-plane churn ({tenants} tenants, {collectors} collector shards)",
            ["op", "count", "ops/sec", "p50 ms", "p99 ms"],
            [
                [
                    row["op"],
                    row["count"],
                    round(row["ops_per_sec"], 1),
                    round(row["p50_ms"], 2),
                    round(row["p99_ms"], 2),
                ]
                for row in rows
            ],
        ),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops", type=int, default=DEFAULT_OPS, help="tasks submitted (and deleted)"
    )
    parser.add_argument(
        "--tenants", type=int, default=DEFAULT_TENANTS, help="tenants to spread across"
    )
    parser.add_argument(
        "--collectors",
        type=int,
        default=DEFAULT_COLLECTORS,
        help="collector shards behind the control plane",
    )
    args = parser.parse_args(argv)
    rows = measure(args.ops, tenants=args.tenants, collectors=args.collectors)
    report(rows, args.tenants, args.collectors)
    path = persist(rows, args.tenants, args.collectors)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
