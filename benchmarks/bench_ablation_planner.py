"""Ablations for the planner's design choices (DESIGN.md, "Implementation
decisions beyond the paper's text").

Not a paper figure: these isolate the contribution of each mechanism we
added where the paper under-specifies, so regressions in any of them
are visible:

- **seed ladder**: initialization from both endpoint partitions plus
  similarity-clustered k-way partitions, vs the paper-literal
  singleton start;
- **full-rebuild fallback**: granting top-ranked candidates one full
  forest rebuild when incremental evaluation finds nothing;
- **construction preference**: the blended slots/depth rule vs the
  paper-literal STAR construction inside the adaptive builder.
"""

import pytest

from _common import BENCH_BUDGET, BENCH_ITERS, emit, standard_cluster
from repro.analysis.report import format_table
from repro.core.cost import CostModel
from repro.core.partition import Partition
from repro.core.planner import RemoPlanner
from repro.core.schemes import observable_pairs
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.workloads.tasks import TaskSampler

COST = CostModel(per_message=20.0, per_value=1.0)


@pytest.fixture(scope="module")
def workload():
    cluster = standard_cluster(n_nodes=80, capacity=500.0, central=800.0)
    tasks = TaskSampler(cluster, seed=55).sample_many(18, (2, 6), (20, 60), prefix="abl-")
    return cluster, tasks


def coverage_of(planner, tasks, cluster, **plan_kwargs):
    return planner.plan(tasks, cluster, **plan_kwargs).coverage()


def test_ablation_seed_ladder(workload, benchmark):
    cluster, tasks = workload
    planner = RemoPlanner(COST, candidate_budget=BENCH_BUDGET, max_iterations=BENCH_ITERS)
    pairs = observable_pairs(tasks, cluster)
    attrs = frozenset(p.attribute for p in pairs)

    def run():
        seeded = coverage_of(planner, tasks, cluster)
        singleton_start = coverage_of(
            planner, tasks, cluster, initial_partition=Partition.singletons(attrs)
        )
        return seeded, singleton_start

    seeded, singleton_start = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation",
        format_table(
            "Ablation: initialization seed ladder",
            ["variant", "coverage"],
            [
                ["endpoints + k-way seeds", round(seeded, 4)],
                ["singletons only (paper-literal)", round(singleton_start, 4)],
            ],
        ),
    )
    assert seeded >= singleton_start - 1e-9


def test_ablation_full_rebuild_fallback(workload, benchmark):
    cluster, tasks = workload

    def run():
        with_fallback = RemoPlanner(
            COST, candidate_budget=BENCH_BUDGET, max_iterations=BENCH_ITERS
        )
        without = RemoPlanner(
            COST, candidate_budget=BENCH_BUDGET, max_iterations=BENCH_ITERS
        )
        without._full_rebuild_budget = 0
        return (
            coverage_of(with_fallback, tasks, cluster),
            coverage_of(without, tasks, cluster),
        )

    with_fb, without_fb = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation",
        format_table(
            "Ablation: full-rebuild fallback in candidate evaluation",
            ["variant", "coverage"],
            [
                ["with fallback", round(with_fb, 4)],
                ["incremental only", round(without_fb, 4)],
            ],
        ),
    )
    assert with_fb >= without_fb - 1e-9


def test_ablation_construction_preference(workload, benchmark):
    cluster, tasks = workload

    def run():
        blend = RemoPlanner(
            COST,
            tree_builder=AdaptiveTreeBuilder(COST, construction="blend"),
            candidate_budget=BENCH_BUDGET,
            max_iterations=BENCH_ITERS,
        )
        star = RemoPlanner(
            COST,
            tree_builder=AdaptiveTreeBuilder(COST, construction="star"),
            candidate_budget=BENCH_BUDGET,
            max_iterations=BENCH_ITERS,
        )
        return coverage_of(blend, tasks, cluster), coverage_of(star, tasks, cluster)

    blend_cov, star_cov = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation",
        format_table(
            "Ablation: adaptive-builder construction preference",
            ["variant", "coverage"],
            [
                ["blend (slots/depth)", round(blend_cov, 4)],
                ["star (paper-literal)", round(star_cov, 4)],
            ],
        ),
    )
    # The blend must never be materially worse than the literal rule.
    assert blend_cov >= star_cov - 0.02
