"""Fig. 7 -- tree construction schemes under varying workload/system.

Compares STAR, CHAIN, MAX_AVB (the TMON heuristic) and REMO's
ADAPTIVE construction as the tree builder inside the monitoring
planner.  A single tree's size is largely pinned by its root's relay
budget, so construction quality shows up at the *forest* level: a
scheme that wastes node capacity (CHAIN's relaying, STAR's root
overhead) leaves less for the other trees sharing those nodes and
collects fewer values overall.

- 7a: increasing number of tasks (workload), moderate overhead;
- 7b: increasing nodes per task (workload concentration);
- 7c: increasing node capacity (light -> generous headroom);
- 7d: increasing per-message overhead ``C/a``.

Expected shape (paper): ADAPTIVE best or tied everywhere; STAR
strongest among the baselines under heavy workload (minimum relay
cost); CHAIN competitive only under light workload; MAX_AVB good at
small workloads, degrading as load grows.
"""

import pytest

from _common import emit_series, standard_cluster
from repro.analysis.report import Series
from repro.core.cost import CostModel
from repro.core.schemes import SingletonSetPlanner
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.trees.chain import ChainTreeBuilder
from repro.trees.max_avb import MaxAvailableTreeBuilder
from repro.trees.star import StarTreeBuilder
from repro.workloads.tasks import TaskSampler

BUILDERS = {
    "ADAPTIVE": AdaptiveTreeBuilder,
    "STAR": StarTreeBuilder,
    "CHAIN": ChainTreeBuilder,
    "MAX_AVB": MaxAvailableTreeBuilder,
}
NAMES = list(BUILDERS)


def run_point(cost, tasks, cluster):
    point = {}
    for name, builder_cls in BUILDERS.items():
        planner = SingletonSetPlanner(cost, tree_builder=builder_cls(cost))
        point[name] = round(planner.plan(tasks, cluster).coverage(), 4)
    return point


def to_series(points):
    series = [Series(n) for n in NAMES]
    for point in points:
        for s in series:
            s.add(point[s.name])
    return series


@pytest.fixture(scope="module")
def cluster():
    return standard_cluster(n_nodes=80, capacity=600.0, central=2400.0)


def test_fig7a_task_count(cluster, benchmark):
    xs = [5, 10, 20, 40]
    cost = CostModel(10.0, 1.0)
    sampler = TaskSampler(cluster, seed=41)

    def run():
        return to_series(
            [
                run_point(
                    cost,
                    sampler.sample_many(n, (2, 5), (20, 60), prefix=f"t{n}-"),
                    cluster,
                )
                for n in xs
            ]
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig07", "Fig 7a: % collected vs number of tasks", "tasks", xs, result)
    adaptive = result[0]
    for other in result[1:]:
        assert all(a >= o - 0.01 for a, o in zip(adaptive.values, other.values))


def test_fig7b_nodes_per_task(cluster, benchmark):
    xs = [20, 40, 70]
    cost = CostModel(10.0, 1.0)
    sampler = TaskSampler(cluster, seed=43)

    def run():
        return to_series(
            [
                run_point(
                    cost,
                    sampler.sample_many(15, (2, 5), (nt, nt), prefix=f"n{nt}-"),
                    cluster,
                )
                for nt in xs
            ]
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig07", "Fig 7b: % collected vs nodes per task", "|Nt|", xs, result)
    adaptive = result[0]
    for other in result[1:]:
        assert all(a >= o - 0.01 for a, o in zip(adaptive.values, other.values))


def test_fig7c_capacity(benchmark):
    xs = [300.0, 600.0, 1200.0, 2400.0]
    cost = CostModel(10.0, 1.0)

    def run():
        points = []
        for b in xs:
            cluster = standard_cluster(n_nodes=80, capacity=b, central=4.0 * b)
            tasks = TaskSampler(cluster, seed=45).sample_many(
                15, (2, 5), (20, 60), prefix=f"b{b}-"
            )
            points.append(run_point(cost, tasks, cluster))
        return to_series(points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig07", "Fig 7c: % collected vs node capacity", "capacity", xs, result)
    named = dict(zip(NAMES, result))
    adaptive = named["ADAPTIVE"]
    for other_name in ("STAR", "CHAIN", "MAX_AVB"):
        assert all(
            a >= o - 0.01 for a, o in zip(adaptive.values, named[other_name].values)
        )
    # Generous capacity: everything collected.
    assert adaptive.values[-1] == pytest.approx(1.0, abs=0.02)


def test_fig7d_overhead_ratio(cluster, benchmark):
    xs = [2.0, 10.0, 30.0]
    sampler = TaskSampler(cluster, seed=47)
    tasks = sampler.sample_many(15, (2, 5), (20, 60), prefix="c-")

    def run():
        return to_series([run_point(CostModel(c, 1.0), tasks, cluster) for c in xs])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig07", "Fig 7d: % collected vs C/a", "C/a", xs, result)
    adaptive = result[0]
    for other in result[1:]:
        assert all(a >= o - 0.01 for a, o in zip(adaptive.values, other.values))
