"""Fig. 9 -- adaptation schemes under increasing task-update frequency.

A dynamic environment is emulated per Section 7.1: each update batch
randomly selects 5% of the monitoring nodes and replaces 50% of their
tasks' attributes.  Within a fixed window of collection periods we
apply 1, 2, 4 or 8 such batches and compare four schemes:

- D-A (DIRECT-APPLY): patch the topology, no re-optimization;
- REBUILD: full REMO planning on every batch;
- NO-THROTTLE: restricted local search around reconstructed trees;
- ADAPTIVE: NO-THROTTLE plus cost-benefit throttling.

Four panels, as in the paper:

- 9a: planner CPU seconds per window (REBUILD >> NO-THROTTLE >=
  ADAPTIVE > D-A);
- 9b: adaptation messages as % of total messages (REBUILD highest,
  ADAPTIVE ~ D-A);
- 9c: total cost (adaptation + monitoring traffic) relative to D-A
  (ADAPTIVE stays below 100%; REBUILD crosses above as frequency
  grows);
- 9d: collected values relative to D-A (ADAPTIVE/NO-THROTTLE gain).
"""

import time

import pytest

from _common import emit_series, standard_cluster
from repro.analysis.report import Series
from repro.core.adaptation import AdaptationStrategy, AdaptiveMonitoringService
from repro.core.cost import CostModel
from repro.core.tasks import MonitoringTask
from repro.workloads.tasks import TaskSampler
from repro.workloads.updates import TaskUpdateStream

COST = CostModel(per_message=20.0, per_value=1.0)
FREQUENCIES = [1, 2, 4, 8]
WINDOW_PERIODS = 10.0
STRATEGIES = {
    "D-A": AdaptationStrategy.DIRECT_APPLY,
    "REBUILD": AdaptationStrategy.REBUILD,
    "NO-THROTTLE": AdaptationStrategy.NO_THROTTLE,
    "ADAPTIVE": AdaptationStrategy.ADAPTIVE,
}


def run_window(strategy, cluster, tasks, n_batches, seed):
    """Apply ``n_batches`` update batches within one window.

    Returns (cpu_seconds, adaptation_cost, monitoring_volume, collected).

    Reconfiguration control messages pay the same per-message overhead
    ``C`` as monitoring messages and *compete with monitoring data for
    node capacity* (Section 7.1: the more traffic a scheme generates,
    the more values are miss-collected).  ``collected`` is therefore
    measured by simulating the final plan with every node's budget
    shaved by its share of the window's adaptation traffic.
    """
    svc = AdaptiveMonitoringService(
        cluster, COST, strategy=strategy, candidate_budget=4, max_ops_per_batch=4
    )
    svc.initialize(tasks, now=0.0)
    stream = TaskUpdateStream(cluster, tasks, seed=seed)
    cpu = 0.0
    adaptation_msgs = 0
    node_adapt_cost: dict = {}
    spacing = WINDOW_PERIODS / n_batches
    previous_edges = svc.plan.edge_multiset()
    for i in range(n_batches):
        batch = stream.next_batch()
        started = time.perf_counter()
        report = svc.apply_changes(batch, now=(i + 1) * spacing)
        cpu += time.perf_counter() - started
        adaptation_msgs += report.adaptation_messages
        current = svc.plan.edge_multiset()
        for (node, parent), count in current.items():
            delta = abs(count - previous_edges.get((node, parent), 0))
            if delta:
                node_adapt_cost[node] = (
                    node_adapt_cost.get(node, 0.0) + COST.overhead_cost(delta)
                )
                if parent >= 0:
                    node_adapt_cost[parent] = (
                        node_adapt_cost.get(parent, 0.0) + COST.overhead_cost(delta)
                    )
        for (node, parent), count in previous_edges.items():
            if (node, parent) not in current:
                node_adapt_cost[node] = (
                    node_adapt_cost.get(node, 0.0) + COST.overhead_cost(count)
                )
                if parent >= 0:
                    node_adapt_cost[parent] = (
                        node_adapt_cost.get(parent, 0.0) + COST.overhead_cost(count)
                    )
        previous_edges = current
    final = svc.plan
    monitoring_msgs = final.total_message_cost() * WINDOW_PERIODS
    collected = _simulate_collected(final, cluster, node_adapt_cost)
    adaptation_cost = COST.overhead_cost(adaptation_msgs)
    return cpu, adaptation_cost, monitoring_msgs, collected


def _simulate_collected(plan, cluster, node_adapt_cost):
    """Fraction of requested pairs fresh per period, with per-node
    budgets reduced by adaptation traffic spread over the window."""
    from repro.cluster.node import Cluster, SimNode
    from repro.simulation import MonitoringSimulation, SimulationConfig

    shaved_nodes = []
    for node in cluster:
        shave = node_adapt_cost.get(node.node_id, 0.0) / WINDOW_PERIODS
        shaved_nodes.append(
            SimNode(
                node_id=node.node_id,
                capacity=max(node.capacity - shave, 1e-6),
                attributes=node.attributes,
            )
        )
    shaved = Cluster(shaved_nodes, central_capacity=cluster.central_capacity)
    stats = MonitoringSimulation(
        plan, shaved, config=SimulationConfig(seed=7)
    ).run(int(WINDOW_PERIODS))
    return stats.mean_fresh_coverage * plan.requested_pair_count()


@pytest.fixture(scope="module")
def fig9_data():
    cluster = standard_cluster(n_nodes=60, capacity=600.0, central=1500.0)
    sampled = TaskSampler(cluster, seed=71).sample_many(25, (2, 5), (15, 45), prefix="dyn-")
    # Decompose tasks to node granularity: the paper's update protocol
    # replaces 50% of the attributes monitored *on the selected nodes*,
    # not half of every task touching them.  Per-node tasks expand to
    # the identical de-duplicated pair set (planning is unaffected)
    # while confining each batch's churn to the selected nodes' pairs.
    tasks = []
    for task in sampled:
        for node in sorted(task.nodes):
            tasks.append(
                MonitoringTask(f"{task.task_id}@{node}", task.attributes, [node])
            )
    data = {name: [] for name in STRATEGIES}
    for freq in FREQUENCIES:
        for name, strategy in STRATEGIES.items():
            data[name].append(run_window(strategy, cluster, tasks, freq, seed=100 + freq))
    return data


def test_fig9a_planning_cpu(fig9_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = []
    for name in STRATEGIES:
        series.append(Series(name, [round(row[0], 4) for row in fig9_data[name]]))
    emit_series(
        "fig09", "Fig 9a: planning CPU seconds vs update batches/window",
        "batches", FREQUENCIES, series,
    )
    by_name = {s.name: s.values for s in series}
    # REBUILD is the most expensive planner at the highest frequency;
    # D-A the cheapest.
    assert by_name["REBUILD"][-1] >= by_name["ADAPTIVE"][-1]
    assert by_name["D-A"][-1] <= by_name["ADAPTIVE"][-1] + 1e-6


def test_fig9b_adaptation_cost_share(fig9_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = []
    for name in STRATEGIES:
        values = []
        for cpu, adapt, monitoring, collected in fig9_data[name]:
            values.append(round(100.0 * adapt / (adapt + monitoring), 4))
        series.append(Series(name, values))
    emit_series(
        "fig09", "Fig 9b: adaptation messages as % of total cost",
        "batches", FREQUENCIES, series,
    )
    by_name = {s.name: s.values for s in series}
    assert by_name["REBUILD"][-1] >= by_name["ADAPTIVE"][-1]
    assert by_name["REBUILD"][-1] >= by_name["D-A"][-1]


def test_fig9c_total_cost_vs_da(fig9_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    da_totals = [row[1] + row[2] for row in fig9_data["D-A"]]
    series = []
    for name in STRATEGIES:
        values = []
        for (row, da_total) in zip(fig9_data[name], da_totals):
            total = row[1] + row[2]
            values.append(round(100.0 * total / da_total, 2))
        series.append(Series(name, values))
    emit_series(
        "fig09", "Fig 9c: total cost as % of D-A", "batches", FREQUENCIES, series
    )
    by_name = {s.name: s.values for s in series}
    # ADAPTIVE never costs more than REBUILD at high frequency.
    assert by_name["ADAPTIVE"][-1] <= by_name["REBUILD"][-1]


def test_fig9d_collected_vs_da(fig9_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    da_collected = [row[3] for row in fig9_data["D-A"]]
    series = []
    for name in STRATEGIES:
        values = []
        for row, da in zip(fig9_data[name], da_collected):
            values.append(round(100.0 * row[3] / max(da, 1), 2))
        series.append(Series(name, values))
    emit_series(
        "fig09", "Fig 9d: collected values as % of D-A", "batches", FREQUENCIES, series
    )
    by_name = {s.name: s.values for s in series}
    # Topology optimization pays: ADAPTIVE collects at least as much as
    # D-A (100%) on average across frequencies.
    mean_adaptive = sum(by_name["ADAPTIVE"]) / len(FREQUENCIES)
    assert mean_adaptive >= 99.0
