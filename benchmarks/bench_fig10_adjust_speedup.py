"""Fig. 10 -- speedup of the optimized tree-adjusting procedures.

Section 5.1 introduces two optimizations over the basic adjusting
procedure (which dismantles a pruned branch and re-homes its nodes one
by one anywhere in the tree):

- branch-based re-attaching (move the branch whole);
- subtree-only searching (restrict re-attachment targets to the
  congested node's subtree, justified by Theorem 1).

The paper reports up to ~11x speedup combined, with < 2% loss in
collected values.  We time the adaptive builder under saturated
workloads with each adjuster variant and report speedups and the
coverage penalty.
"""

import time

import pytest

from _common import emit
from repro.analysis.report import format_table
from repro.core.cost import CostModel
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.trees.adjust import TreeAdjuster
from repro.trees.base import TreeBuildRequest

COST = CostModel(per_message=20.0, per_value=1.0)

VARIANTS = {
    "basic": (False, False),
    "branch-based": (True, False),
    "subtree-only": (False, True),
    "combined": (True, True),
}


def saturated_request(n_nodes, capacity=300.0, values=2):
    attrs = [f"m{i}" for i in range(values)]
    return TreeBuildRequest(
        attributes=frozenset(attrs),
        demands={i: {a: 1.0 for a in attrs} for i in range(n_nodes)},
        capacities={i: capacity for i in range(n_nodes)},
        central_capacity=10_000.0,
    )


def run_variant(branch_based, subtree_only, n_nodes, repeats=2):
    """Time the paper-faithful STAR-construction adaptive builder with
    the requested adjuster variant (min over repeats, after warm-up)."""
    builder = AdaptiveTreeBuilder(
        COST,
        adjuster=TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only),
        construction="star",
    )
    builder.build(saturated_request(n_nodes))  # warm-up
    best = float("inf")
    pairs = 0
    probes = 0
    for _ in range(repeats):
        adjuster = TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only)
        builder = AdaptiveTreeBuilder(COST, adjuster=adjuster, construction="star")
        request = saturated_request(n_nodes)
        started = time.perf_counter()
        result = builder.build(request)
        best = min(best, time.perf_counter() - started)
        pairs = result.tree.pair_count()
        probes = adjuster.probe_count
    return best, pairs, probes


@pytest.fixture(scope="module")
def fig10_data():
    sizes = [120, 240, 360]
    data = {}
    for name, (bb, so) in VARIANTS.items():
        data[name] = [run_variant(bb, so, n) for n in sizes]
    return sizes, data


def test_fig10a_speedup(fig10_data, benchmark):
    sizes, data = fig10_data
    benchmark.pedantic(
        lambda: run_variant(True, True, 120, repeats=1), rounds=1, iterations=1
    )
    rows = []
    for i, n in enumerate(sizes):
        base_time = data["basic"][i][0]
        row = [n]
        for name in VARIANTS:
            t = data[name][i][0]
            row.append(round(base_time / t, 2) if t > 0 else float("inf"))
        rows.append(row)
    emit(
        "fig10",
        format_table(
            "Fig 10a: adjusting-procedure speedup over basic (x)",
            ["nodes"] + list(VARIANTS),
            rows,
        ),
    )
    # Combined optimization strictly beats basic at the largest size,
    # with the gap growing with scale (the paper reports up to ~11x on
    # its workloads; our regime yields 2-4x).
    assert rows[-1][-1] >= 1.5
    assert rows[-1][-1] >= rows[0][-1] * 0.8


def test_fig10b_coverage_penalty(fig10_data, benchmark):
    sizes, data = fig10_data
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for i, n in enumerate(sizes):
        base_pairs = data["basic"][i][1]
        row = [n]
        for name in VARIANTS:
            pairs = data[name][i][1]
            row.append(round(100.0 * pairs / max(base_pairs, 1), 2))
        rows.append(row)
    emit(
        "fig10",
        format_table(
            "Fig 10b: collected values as % of basic adjusting",
            ["nodes"] + list(VARIANTS),
            rows,
        ),
    )
    # The paper's bound: optimization costs < 2% coverage. Allow 5%.
    for row in rows:
        assert row[-1] >= 95.0


def test_fig10_probe_reduction(fig10_data, benchmark):
    """Search-effort view: subtree-only probes fewer candidates."""
    sizes, data = fig10_data
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for i, n in enumerate(sizes):
        rows.append(
            [n] + [data[name][i][2] for name in VARIANTS]
        )
    emit(
        "fig10",
        format_table(
            "Fig 10 (aux): re-attachment feasibility probes",
            ["nodes"] + list(VARIANTS),
            rows,
        ),
    )
    # Subtree-only restriction is what bounds the branch-move search
    # space (branch-based alone scans the whole tree per move).
    for i in range(len(sizes)):
        assert data["combined"][i][2] <= data["branch-based"][i][2]
