"""Fig. 8 -- average percentage error of collected values.

The paper's real-system experiment: a YieldMonitor-like stream
application runs across the cluster, synthetic monitoring tasks are
planned by each scheme, and the *average percentage error* between
the collector's view of each requested node-attribute pair and the
ground truth at the same instant is measured (stale and dropped
values hurt; uncovered pairs count as 100% error).

- 8a: error vs number of nodes;
- 8b: error vs number of monitoring tasks.

Expected shape (paper): REMO's error is 30-50% below SINGLETON-SET's
and ONE-SET's, and error falls with more nodes (sparser load =>
bushier trees => fresher values).
"""

import pytest

from _common import emit_series, make_planners
from repro.analysis.report import Series
from repro.core.cost import CostModel
from repro.simulation import MonitoringSimulation, SimulationConfig
from repro.streams import (
    StreamMetricRegistry,
    build_stream_cluster,
    make_yieldmonitor,
    yieldmonitor_tasks,
)

COST = CostModel(per_message=20.0, per_value=1.0)
NAMES = ["REMO", "SINGLETON-SET", "ONE-SET"]
PERIODS = 12


def measure_error(plan, cluster, app) -> float:
    stats = MonitoringSimulation(
        plan,
        cluster,
        registry=StreamMetricRegistry(app),
        config=SimulationConfig(seed=5),
    ).run(PERIODS)
    return stats.mean_percentage_error


def run_point(n_nodes, n_tasks, capacity=260.0):
    app = make_yieldmonitor(n_nodes=n_nodes, n_lines=max(4, n_nodes // 3), seed=61)
    cluster = build_stream_cluster(app, capacity=capacity, central_capacity=2.0 * capacity)
    tasks = yieldmonitor_tasks(app, n_tasks, seed=62)
    planners = make_planners(COST)
    return {
        name: round(measure_error(planner.plan(tasks, cluster), cluster, app), 4)
        for name, planner in planners.items()
    }


def to_series(points):
    series = [Series(n) for n in NAMES]
    for point in points:
        for s in series:
            s.add(point[s.name])
    return series


def test_fig8a_error_vs_nodes(benchmark):
    xs = [30, 60, 90]

    def run():
        return to_series([run_point(n, 40) for n in xs])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig08", "Fig 8a: avg percentage error vs nodes", "nodes", xs, result)
    remo, sp, op = result
    assert all(r <= s + 1e-9 for r, s in zip(remo.values, sp.values))
    assert all(r <= o + 1e-9 for r, o in zip(remo.values, op.values))
    # The paper's headline: 30-50% (we accept >= 20%) error reduction
    # vs the better baseline, on average across points.
    baseline = [min(s, o) for s, o in zip(sp.values, op.values)]
    mean_reduction = sum(
        (b - r) / b for r, b in zip(remo.values, baseline) if b > 0
    ) / len(xs)
    assert mean_reduction >= 0.2


def test_fig8b_error_vs_tasks(benchmark):
    xs = [20, 40, 60]

    def run():
        return to_series([run_point(60, t) for t in xs])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_series("fig08", "Fig 8b: avg percentage error vs tasks", "tasks", xs, result)
    remo, sp, op = result
    assert all(r <= min(s, o) + 1e-9 for r, s, o in zip(remo.values, sp.values, op.values))
