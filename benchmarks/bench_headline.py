"""The paper's headline claim, at published scale.

Abstract: "Using REMO in the context of collecting over 200 monitoring
tasks for an application deployed across 200 nodes results in a 35-45
percent decrease in the percentage error of collected attributes
compared to existing schemes."

This bench deploys the YieldMonitor-like application across 200 nodes,
registers 200 monitoring tasks, plans with REMO and both existing
schemes, runs the plans in the simulator, and checks the error
reduction lands in (or above) the published band.
"""

import pytest

from _common import emit
from repro.analysis.report import format_table
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.simulation import MonitoringSimulation, SimulationConfig
from repro.streams import (
    StreamMetricRegistry,
    build_stream_cluster,
    make_yieldmonitor,
    yieldmonitor_tasks,
)

COST = CostModel(per_message=20.0, per_value=1.0)


def test_headline_200_nodes_200_tasks(benchmark):
    app = make_yieldmonitor(n_nodes=200, n_lines=50, seed=71)
    cluster = build_stream_cluster(app, capacity=300.0, central_capacity=900.0)
    tasks = yieldmonitor_tasks(app, 200, seed=72, nodes_per_task=(10, 40))

    def measure(planner):
        plan = planner.plan(tasks, cluster)
        stats = MonitoringSimulation(
            plan,
            cluster,
            registry=StreamMetricRegistry(app),
            config=SimulationConfig(seed=5),
        ).run(8)
        return plan, stats.mean_percentage_error

    def run():
        results = {}
        results["SINGLETON-SET"] = measure(SingletonSetPlanner(COST))
        results["ONE-SET"] = measure(OneSetPlanner(COST))
        results["REMO"] = measure(
            RemoPlanner(COST, candidate_budget=6, max_iterations=24)
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (plan, error) in results.items():
        rows.append([name, round(plan.coverage(), 4), plan.tree_count(), round(error, 4)])
    remo_error = results["REMO"][1]
    best_baseline = min(results["SINGLETON-SET"][1], results["ONE-SET"][1])
    reduction = (best_baseline - remo_error) / best_baseline
    rows.append(["error reduction vs best baseline", "", "", f"{100 * reduction:.1f}%"])
    emit(
        "headline",
        format_table(
            "Headline: 200 nodes / 200 tasks (paper: 35-45% error reduction)",
            ["scheme", "coverage", "trees", "% error"],
            rows,
        ),
    )
    # The published band is 35-45%; accept anything >= 25% so modest
    # regressions surface without making the bench flaky.
    assert reduction >= 0.25
